//! Gumbel-softmax relaxation for discrete MARL actions.
//!
//! The particle environments use a 5-way discrete action space; MADDPG
//! handles discrete actions by sampling from a Gumbel-softmax distribution
//! over the actor's logits, keeping the action differentiable for the
//! deterministic policy-gradient update.

use crate::activation::{
    softmax, softmax_backward, softmax_backward_into, softmax_backward_slice, softmax_inplace,
    softmax_slice_inplace,
};
use crate::matrix::Matrix;
use crate::rng::standard_gumbel;
use rand::Rng;

/// A differentiable Gumbel-softmax sample along with the state needed for
/// its backward pass.
#[derive(Debug, Clone)]
pub struct GumbelSample {
    /// The relaxed one-hot sample (rows sum to 1).
    pub value: Matrix,
    /// Temperature used for the sample.
    pub temperature: f32,
}

impl GumbelSample {
    /// Backpropagates `dL/dvalue` to `dL/dlogits`.
    pub fn backward(&self, grad_out: &Matrix) -> Matrix {
        let mut g = softmax_backward(grad_out, &self.value);
        g.scale(1.0 / self.temperature);
        g
    }
}

/// Backward of the softmax relaxation expressed on raw buffers: given the
/// relaxed sample `value` and `dL/dvalue`, writes `dL/dlogits` into
/// `grad_logits` (allocation-free).
pub fn relaxation_backward_into(
    grad_out: &Matrix,
    value: &Matrix,
    temperature: f32,
    grad_logits: &mut Matrix,
) {
    softmax_backward_into(grad_out, value, grad_logits);
    grad_logits.scale(1.0 / temperature);
}

/// Draws a Gumbel-softmax sample `softmax((logits + g) / temperature)`.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn gumbel_softmax_sample<R: Rng + ?Sized>(
    logits: &Matrix,
    temperature: f32,
    rng: &mut R,
) -> GumbelSample {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut noisy = logits.clone();
    for x in noisy.as_mut_slice() {
        *x = (*x + standard_gumbel(rng)) / temperature;
    }
    GumbelSample { value: softmax(&noisy), temperature }
}

/// Deterministic relaxation (no Gumbel noise): `softmax(logits / temperature)`.
pub fn softmax_relaxation(logits: &Matrix, temperature: f32) -> GumbelSample {
    let mut value = Matrix::default();
    softmax_relaxation_into(logits, temperature, &mut value);
    GumbelSample { value, temperature }
}

/// [`softmax_relaxation`] writing the relaxed sample into a caller-owned
/// buffer (allocation-free).
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn softmax_relaxation_into(logits: &Matrix, temperature: f32, value: &mut Matrix) {
    assert!(temperature > 0.0, "temperature must be positive");
    value.copy_from(logits);
    value.scale(1.0 / temperature);
    softmax_inplace(value);
}

/// Applies softmax independently to each segment of each row: the
/// relaxation of a composite (movement ⊕ communication) action space,
/// where every factor normalizes on its own. A single segment spanning
/// the whole row is bitwise identical to [`softmax_inplace`].
///
/// # Panics
///
/// Panics if the segment widths do not sum to the column count.
pub fn softmax_segments_inplace(m: &mut Matrix, segments: &[usize]) {
    assert_eq!(segments.iter().sum::<usize>(), m.cols(), "segments must tile the row");
    for r in 0..m.rows() {
        let mut row = m.row_mut(r);
        for &s in segments {
            let (head, rest) = row.split_at_mut(s);
            softmax_slice_inplace(head);
            row = rest;
        }
    }
}

/// [`softmax_relaxation_into`] with per-segment normalization: writes
/// `softmax(logits / temperature)` applied independently to each action
/// factor. Single-segment spaces reproduce the unsegmented relaxation
/// bit for bit.
///
/// # Panics
///
/// Panics if `temperature <= 0` or the segments do not tile the row.
pub fn softmax_relaxation_segments_into(
    logits: &Matrix,
    segments: &[usize],
    temperature: f32,
    value: &mut Matrix,
) {
    assert!(temperature > 0.0, "temperature must be positive");
    value.copy_from(logits);
    value.scale(1.0 / temperature);
    softmax_segments_inplace(value, segments);
}

/// [`relaxation_backward_into`] with per-segment normalization: each
/// action factor backpropagates through its own softmax Jacobian. The
/// trailing `1/temperature` scale is elementwise, so segmenting commutes
/// with it and a single segment matches the unsegmented path bitwise.
///
/// # Panics
///
/// Panics if the segments do not tile the row.
pub fn relaxation_backward_segments_into(
    grad_out: &Matrix,
    value: &Matrix,
    segments: &[usize],
    temperature: f32,
    grad_logits: &mut Matrix,
) {
    assert_eq!(grad_out.shape(), value.shape(), "relaxation backward shape mismatch");
    assert_eq!(segments.iter().sum::<usize>(), value.cols(), "segments must tile the row");
    grad_logits.resize(grad_out.rows(), grad_out.cols());
    for r in 0..grad_out.rows() {
        let mut g = grad_out.row(r);
        let mut y = value.row(r);
        let mut out = grad_logits.row_mut(r);
        for &s in segments {
            let (gh, gr) = g.split_at(s);
            let (yh, yr) = y.split_at(s);
            let (oh, or) = out.split_at_mut(s);
            softmax_backward_slice(gh, yh, oh);
            g = gr;
            y = yr;
            out = or;
        }
    }
    grad_logits.scale(1.0 / temperature);
}

/// First-maximum index of one raw slice (ties break low, matching
/// [`harden`] and [`argmax_actions`]).
pub fn argmax_slice(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Converts relaxed samples to hard one-hot rows (straight-through
/// discretization used when acting in the environment).
pub fn harden(sample: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(sample.rows(), sample.cols());
    for r in 0..sample.rows() {
        let row = sample.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        *out.at_mut(r, best) = 1.0;
    }
    out
}

/// Index of the arg-max action in each row.
pub fn argmax_actions(sample: &Matrix) -> Vec<usize> {
    (0..sample.rows())
        .map(|r| {
            let row = sample.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn samples_are_distributions() {
        let mut rng = seeded(21);
        let logits = Matrix::from_rows(&[&[1.0, 0.0, -1.0], &[0.0, 0.0, 0.0]]);
        let s = gumbel_softmax_sample(&logits, 1.0, &mut rng);
        for r in 0..2 {
            let sum: f32 = s.value.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn low_temperature_approaches_one_hot() {
        let logits = Matrix::row_vector(&[5.0, 0.0, 0.0]);
        let s = softmax_relaxation(&logits, 0.1);
        assert!(s.value.at(0, 0) > 0.99);
    }

    #[test]
    fn gumbel_marginals_follow_logits() {
        // Sampling repeatedly, the argmax frequency should respect the
        // softmax ordering of the logits.
        let mut rng = seeded(22);
        let logits = Matrix::row_vector(&[2.0, 0.0, -2.0]);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let s = gumbel_softmax_sample(&logits, 1.0, &mut rng);
            counts[argmax_actions(&s.value)[0]] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn harden_gives_one_hot() {
        let m = Matrix::from_rows(&[&[0.2, 0.5, 0.3], &[0.9, 0.05, 0.05]]);
        let h = harden(&m);
        assert_eq!(h.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        assert_eq!(argmax_actions(&m), vec![1, 0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let logits = Matrix::row_vector(&[0.4, -0.3, 0.1]);
        let temp = 0.7;
        let s = softmax_relaxation(&logits, temp);
        let w = [1.0f32, -2.0, 0.5];
        let g = s.backward(&Matrix::row_vector(&w));
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let f = |l: &Matrix| -> f32 {
                softmax_relaxation(l, temp)
                    .value
                    .as_slice()
                    .iter()
                    .zip(&w)
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((fd - g.as_slice()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let _ = softmax_relaxation(&Matrix::row_vector(&[0.0]), 0.0);
    }

    #[test]
    fn single_segment_relaxation_is_bitwise_identical_to_full_row() {
        let logits =
            Matrix::from_rows(&[&[0.4, -0.3, 0.1, 2.0, -1.5], &[1.0, 1.0, 0.0, -2.0, 3.0]]);
        let mut full = Matrix::default();
        softmax_relaxation_into(&logits, 0.7, &mut full);
        let mut seg = Matrix::default();
        softmax_relaxation_segments_into(&logits, &[5], 0.7, &mut seg);
        assert_eq!(full.as_slice(), seg.as_slice(), "values diverge");

        let grad = Matrix::from_rows(&[&[1.0, -2.0, 0.5, 0.0, 0.3], &[0.1, 0.2, 0.3, 0.4, 0.5]]);
        let mut g_full = Matrix::default();
        relaxation_backward_into(&grad, &full, 0.7, &mut g_full);
        let mut g_seg = Matrix::default();
        relaxation_backward_segments_into(&grad, &seg, &[5], 0.7, &mut g_seg);
        assert_eq!(g_full.as_slice(), g_seg.as_slice(), "gradients diverge");
    }

    #[test]
    fn segmented_relaxation_normalizes_each_factor() {
        let logits = Matrix::row_vector(&[0.4, -0.3, 0.1, 2.0, -1.5, 0.7, 0.0, -0.2]);
        let mut value = Matrix::default();
        softmax_relaxation_segments_into(&logits, &[5, 3], 1.0, &mut value);
        let row = value.row(0);
        let head: f32 = row[..5].iter().sum();
        let tail: f32 = row[5..].iter().sum();
        assert!((head - 1.0).abs() < 1e-5, "movement factor sums to {head}");
        assert!((tail - 1.0).abs() < 1e-5, "comm factor sums to {tail}");
    }

    #[test]
    fn segmented_backward_matches_finite_difference() {
        let logits = Matrix::row_vector(&[0.4, -0.3, 0.1, 1.2, -0.8]);
        let segments = [3usize, 2];
        let temp = 0.7;
        let mut value = Matrix::default();
        softmax_relaxation_segments_into(&logits, &segments, temp, &mut value);
        let w = [1.0f32, -2.0, 0.5, 0.3, -0.7];
        let mut g = Matrix::default();
        relaxation_backward_segments_into(&Matrix::row_vector(&w), &value, &segments, temp, &mut g);
        let eps = 1e-3f32;
        for i in 0..5 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let f = |l: &Matrix| -> f32 {
                let mut v = Matrix::default();
                softmax_relaxation_segments_into(l, &segments, temp, &mut v);
                v.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum()
            };
            let fd = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((fd - g.as_slice()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "segments must tile the row")]
    fn mismatched_segments_rejected() {
        let mut m = Matrix::row_vector(&[0.0, 1.0, 2.0]);
        softmax_segments_inplace(&mut m, &[2, 2]);
    }

    #[test]
    fn argmax_slice_breaks_ties_low() {
        assert_eq!(argmax_slice(&[0.2, 0.5, 0.5, 0.3]), 1);
        assert_eq!(argmax_slice(&[1.0]), 0);
    }
}
