//! Fully-connected layer with explicit backpropagation.

use crate::init::Init;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = x · W + b` with cached forward state and accumulated
/// gradients.
///
/// Gradients accumulate across [`Linear::backward`] calls until
/// [`Linear::zero_grad`] resets them, mirroring the usual
/// `zero_grad → forward → backward → step` optimizer loop.
///
/// # Examples
///
/// ```
/// use marl_nn::{linear::Linear, init::Init, matrix::Matrix, rng};
/// let mut rng = rng::seeded(0);
/// let mut layer = Linear::new(3, 2, Init::XavierUniform, &mut rng);
/// let x = Matrix::zeros(4, 3);
/// let y = layer.forward(&x);
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    grad_weight: Matrix,
    grad_bias: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer mapping `fan_in` features to `fan_out` features.
    pub fn new<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, init: Init, rng: &mut R) -> Self {
        Linear {
            weight: init.weights(fan_in, fan_out, rng),
            bias: vec![0.0; fan_out],
            grad_weight: Matrix::zeros(fan_in, fan_out),
            grad_bias: vec![0.0; fan_out],
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn fan_in(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature count.
    pub fn fan_out(&self) -> usize {
        self.weight.cols()
    }

    /// Number of trainable scalars (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Immutable view of the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Immutable view of the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Forward pass, caching the input for the subsequent backward pass.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    /// Forward pass writing into `out`, caching the input (into a reused
    /// buffer) for the subsequent backward pass. Allocation-free once the
    /// cache and `out` have steady-state capacity.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weight, out);
        crate::kernels::add_bias(out.as_mut_slice(), &self.bias);
        match &mut self.cached_input {
            Some(c) => c.copy_from(input),
            None => self.cached_input = Some(input.clone()),
        }
    }

    /// Forward pass without caching (inference only; `backward` afterwards
    /// would panic).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_inference_into(input, &mut out);
        out
    }

    /// Inference forward pass writing into `out` (no cache, no allocation).
    pub fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weight, out);
        crate::kernels::add_bias(out.as_mut_slice(), &self.bias);
    }

    /// Backward pass: accumulates `dL/dW`, `dL/db` and returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Linear::forward`].
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::default();
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    /// Backward pass writing `dL/dx` into `grad_in`; `dL/dW` accumulates
    /// through the fused [`Matrix::transpose_matmul_acc_into`] kernel (no
    /// temporary product matrix) and `dL/db` sums straight into the stored
    /// gradient, so the steady state performs zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if called before any forward pass cached an input.
    pub fn backward_into(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let input = self.cached_input.as_ref().expect("Linear::backward called before forward");
        assert_eq!(grad_out.rows(), input.rows(), "backward batch mismatch");
        input.transpose_matmul_acc_into(grad_out, &mut self.grad_weight);
        let cols = grad_out.cols();
        for r in 0..grad_out.rows() {
            for (gb, &g) in self.grad_bias.iter_mut().zip(&grad_out.row(r)[..cols]) {
                *gb += g;
            }
        }
        grad_out.matmul_transpose_into(&self.weight, grad_in);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.scale(0.0);
        self.grad_bias.iter_mut().for_each(|b| *b = 0.0);
    }

    /// Visits `(parameter, gradient)` pairs; used by the optimizer.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut [f32], &[f32])) {
        // Split borrows: weight/grad_weight then bias/grad_bias.
        let Linear { weight, grad_weight, bias, grad_bias, .. } = self;
        f(weight.as_mut_slice(), grad_weight.as_slice());
        f(bias.as_mut_slice(), grad_bias.as_slice());
    }

    /// Moves this layer's parameters toward `source` by factor `tau`
    /// (Polyak averaging): `θ ← τ·θ_src + (1−τ)·θ`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn soft_update_from(&mut self, source: &Linear, tau: f32) {
        assert_eq!(self.weight.shape(), source.weight.shape(), "soft update shape mismatch");
        for (t, s) in self.weight.as_mut_slice().iter_mut().zip(source.weight.as_slice()) {
            *t = tau * s + (1.0 - tau) * *t;
        }
        for (t, s) in self.bias.iter_mut().zip(source.bias.iter()) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }

    /// Copies parameters verbatim from `source`.
    pub fn hard_update_from(&mut self, source: &Linear) {
        self.soft_update_from(source, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn forward_shapes() {
        let mut r = rng::seeded(0);
        let mut l = Linear::new(5, 3, Init::XavierUniform, &mut r);
        let y = l.forward(&Matrix::zeros(7, 5));
        assert_eq!(y.shape(), (7, 3));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut r = rng::seeded(1);
        let mut l = Linear::new(4, 3, Init::XavierUniform, &mut r);
        let mut x = Matrix::zeros(2, 4);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin();
        }
        // L = sum of outputs
        let ones = Matrix::full(2, 3, 1.0);
        let _y = l.forward(&x);
        let gin = l.backward(&ones);

        let eps = 1e-3f32;
        // check dL/dx numerically
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp: f32 = l.forward_inference(&xp).as_slice().iter().sum();
            let lm: f32 = l.forward_inference(&xm).as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gin.as_slice()[i]).abs() < 1e-2, "input grad {i}");
        }
        // check dL/db analytically: each bias receives batch-size gradient
        let mut seen = vec![];
        l.visit_params(|_, g| seen.push(g.to_vec()));
        assert_eq!(seen[1], vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut r = rng::seeded(2);
        let mut l = Linear::new(2, 2, Init::XavierUniform, &mut r);
        let x = Matrix::full(1, 2, 1.0);
        let g = Matrix::full(1, 2, 1.0);
        l.forward(&x);
        l.backward(&g);
        l.forward(&x);
        l.backward(&g);
        let mut bias_grad = vec![];
        l.visit_params(|_, gr| bias_grad.push(gr.to_vec()));
        assert_eq!(bias_grad[1], vec![2.0, 2.0]);
        l.zero_grad();
        let mut bias_grad2 = vec![];
        l.visit_params(|_, gr| bias_grad2.push(gr.to_vec()));
        assert_eq!(bias_grad2[1], vec![0.0, 0.0]);
    }

    #[test]
    fn soft_update_moves_toward_source() {
        let mut r = rng::seeded(3);
        let src = Linear::new(2, 2, Init::XavierUniform, &mut r);
        let mut dst = Linear::new(2, 2, Init::Zeros, &mut r);
        dst.soft_update_from(&src, 0.5);
        for (d, s) in dst.weight.as_slice().iter().zip(src.weight.as_slice()) {
            assert!((d - 0.5 * s).abs() < 1e-6);
        }
        dst.hard_update_from(&src);
        assert_eq!(dst.weight(), src.weight());
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut r = rng::seeded(4);
        let mut l = Linear::new(2, 2, Init::Zeros, &mut r);
        l.backward(&Matrix::zeros(1, 2));
    }
}
