//! Runtime-dispatched compute kernels: blocked scalar and AVX2+FMA SIMD.
//!
//! Every dense op the update phase spends time in — the three matmul
//! variants, bias-add, ReLU forward/backward, and the Adam parameter
//! step — funnels through this module. The kernel is selected **once**
//! (from `TrainConfig::kernel`, the `MARL_KERNEL` environment variable, or
//! CPU feature detection) and cached in an atomic, so dispatch costs one
//! relaxed load per op.
//!
//! ## Numeric contract
//!
//! * [`KernelKind::Scalar`] accumulates every output element in ascending
//!   reduction order and is bitwise identical to the naive triple loop at
//!   every size (the register-blocked tiles preserve the order).
//! * [`KernelKind::Simd`] uses FMA and 8-lane reassociation for the matmul
//!   family, so those results differ from scalar by bounded rounding error:
//!   `|simd − scalar| ≤ K·ε·Σ|aᵢ·bᵢ|` with `K` the reduction length (see
//!   `tests/kernel_equivalence.rs`). The element-wise ops (bias-add, ReLU,
//!   Adam) avoid FMA and are **bitwise identical** to scalar.
//! * Both kernels are individually deterministic: the same inputs on the
//!   same kernel produce the same bits on every run, thread count, and
//!   resume.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which kernel implementation executes the dense ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Register-blocked scalar loops; bitwise-stable reference path.
    Scalar,
    /// AVX2+FMA vectorized loops (x86-64 only; falls back to scalar
    /// elsewhere or when the CPU lacks the features).
    Simd,
}

/// User-facing kernel selection for `TrainConfig` / `--kernel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Detect at startup: SIMD when the CPU supports AVX2+FMA, else scalar.
    #[default]
    Auto,
    /// Force the scalar kernels.
    Scalar,
    /// Request the SIMD kernels (downgraded to scalar without AVX2+FMA).
    Simd,
}

impl KernelChoice {
    /// Parses the CLI / env spelling (`auto`, `scalar`, `simd`).
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "auto" => Some(KernelChoice::Auto),
            "scalar" => Some(KernelChoice::Scalar),
            "simd" => Some(KernelChoice::Simd),
            _ => None,
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Simd => "simd",
        }
    }
}

/// Whether this host can run the AVX2+FMA kernels.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Cached process-wide kernel: 0 = unresolved, 1 = scalar, 2 = simd.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(k: KernelKind) -> u8 {
    match k {
        KernelKind::Scalar => 1,
        KernelKind::Simd => 2,
    }
}

/// First-use default: `MARL_KERNEL` env override, else feature detection.
fn resolve_default() -> KernelKind {
    let choice = std::env::var("MARL_KERNEL")
        .ok()
        .and_then(|v| KernelChoice::parse(&v))
        .unwrap_or(KernelChoice::Auto);
    match choice {
        KernelChoice::Scalar => KernelKind::Scalar,
        KernelChoice::Simd | KernelChoice::Auto => {
            if simd_available() {
                KernelKind::Simd
            } else {
                KernelKind::Scalar
            }
        }
    }
}

/// The kernel currently in force, resolving and caching it on first use.
pub fn active() -> KernelKind {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => KernelKind::Scalar,
        2 => KernelKind::Simd,
        _ => {
            let k = resolve_default();
            ACTIVE.store(encode(k), Ordering::Relaxed);
            k
        }
    }
}

/// Forces the process-wide kernel; `Simd` downgrades to `Scalar` when the
/// CPU lacks AVX2+FMA. Returns the kernel actually installed.
pub fn set_active(kind: KernelKind) -> KernelKind {
    let k = if kind == KernelKind::Simd && !simd_available() { KernelKind::Scalar } else { kind };
    ACTIVE.store(encode(k), Ordering::Relaxed);
    k
}

/// Applies a config-level choice: `Auto` keeps (or lazily resolves) the
/// current kernel, explicit choices install it. Returns the effective kind.
pub fn configure(choice: KernelChoice) -> KernelKind {
    match choice {
        KernelChoice::Auto => active(),
        KernelChoice::Scalar => set_active(KernelKind::Scalar),
        KernelChoice::Simd => set_active(KernelKind::Simd),
    }
}

/// Process-wide dispatch tallies (telemetry): how many kernel-op calls
/// resolved to each path since the last [`reset_dispatch_tally`].
static DISPATCH_SCALAR: AtomicU64 = AtomicU64::new(0);
static DISPATCH_SIMD: AtomicU64 = AtomicU64::new(0);

/// Records one dispatched kernel call on its *effective* path (a `Simd`
/// request without AVX2+FMA executes — and tallies — as scalar).
#[inline]
fn tally(kind: KernelKind) {
    let simd = kind == KernelKind::Simd && simd_available();
    if simd {
        DISPATCH_SIMD.fetch_add(1, Ordering::Relaxed);
    } else {
        DISPATCH_SCALAR.fetch_add(1, Ordering::Relaxed);
    }
}

/// Kernel calls dispatched since the last reset, as `(scalar, simd)`.
pub fn dispatch_tally() -> (u64, u64) {
    (DISPATCH_SCALAR.load(Ordering::Relaxed), DISPATCH_SIMD.load(Ordering::Relaxed))
}

/// Zeroes the dispatch tallies (benchmarks and tests).
pub fn reset_dispatch_tally() {
    DISPATCH_SCALAR.store(0, Ordering::Relaxed);
    DISPATCH_SIMD.store(0, Ordering::Relaxed);
}

/// Multiply-add count above which the blocked scalar kernels dispatch;
/// below it the simple loops win (no tile bookkeeping) and tiny test
/// matrices stay on the historically exact path.
pub const BLOCK_THRESHOLD: usize = 4096;

// ---------------------------------------------------------------------------
// Dispatched entry points. `C` buffers may hold stale scratch data: every op
// fully overwrites its output (or documents accumulation).
// ---------------------------------------------------------------------------

/// `C = A·B` for row-major `A (m×kd)`, `B (kd×n)`, `C (m×n)`.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
    matmul_with(active(), a, b, c, m, kd, n);
}

/// `C = A·B` on an explicit kernel (tests and benchmarks).
pub fn matmul_with(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) {
    tally(kind);
    debug_assert_eq!(a.len(), m * kd);
    debug_assert_eq!(b.len(), kd * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::matmul(a, b, c, m, kd, n) };
        return;
    }
    let _ = kind;
    scalar::matmul(a, b, c, m, kd, n);
}

/// `C = A·Bᵀ` for row-major `A (m×kd)`, `B (n×kd)`, `C (m×n)`.
pub fn matmul_transpose(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
    matmul_transpose_with(active(), a, b, c, m, kd, n);
}

/// `C = A·Bᵀ` on an explicit kernel.
pub fn matmul_transpose_with(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) {
    tally(kind);
    debug_assert_eq!(a.len(), m * kd);
    debug_assert_eq!(b.len(), n * kd);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::matmul_transpose(a, b, c, m, kd, n) };
        return;
    }
    let _ = kind;
    scalar::matmul_transpose(a, b, c, m, kd, n);
}

/// `C = Aᵀ·B` for row-major `A (m×kd)`, `B (m×n)`, `C (kd×n)`.
pub fn transpose_matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
    transpose_matmul_with(active(), a, b, c, m, kd, n);
}

/// `C = Aᵀ·B` on an explicit kernel.
pub fn transpose_matmul_with(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) {
    tally(kind);
    transpose_matmul_impl::<false>(kind, a, b, c, m, kd, n);
}

/// `C += Aᵀ·B` — the gradient-accumulation fusion used by
/// [`crate::linear::Linear`]: each product element is reduced into a local
/// accumulator and added to `C` once, so accumulation order matches
/// computing the product separately and adding it.
pub fn transpose_matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
    transpose_matmul_acc_with(active(), a, b, c, m, kd, n);
}

/// `C += Aᵀ·B` on an explicit kernel.
pub fn transpose_matmul_acc_with(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) {
    tally(kind);
    transpose_matmul_impl::<true>(kind, a, b, c, m, kd, n);
}

fn transpose_matmul_impl<const ACC: bool>(
    kind: KernelKind,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * kd);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), kd * n);
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::transpose_matmul::<ACC>(a, b, c, m, kd, n) };
        return;
    }
    let _ = kind;
    scalar::transpose_matmul::<ACC>(a, b, c, m, kd, n);
}

/// Adds the broadcast row `bias` to every `bias.len()`-wide row of `x`.
/// Bitwise identical across kernels (pure element-wise additions).
pub fn add_bias(x: &mut [f32], bias: &[f32]) {
    add_bias_with(active(), x, bias);
}

/// Bias-add on an explicit kernel.
pub fn add_bias_with(kind: KernelKind, x: &mut [f32], bias: &[f32]) {
    tally(kind);
    debug_assert!(bias.is_empty() || x.len().is_multiple_of(bias.len()));
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::add_bias(x, bias) };
        return;
    }
    let _ = kind;
    scalar::add_bias(x, bias);
}

/// In-place ReLU: `x = max(x, 0)` (NaN maps to 0, matching `x > 0` tests).
/// Bitwise identical across kernels.
pub fn relu_forward(x: &mut [f32]) {
    relu_forward_with(active(), x);
}

/// ReLU forward on an explicit kernel.
pub fn relu_forward_with(kind: KernelKind, x: &mut [f32]) {
    tally(kind);
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::relu_forward(x) };
        return;
    }
    let _ = kind;
    scalar::relu_forward(x);
}

/// In-place ReLU backward: zeroes `g[i]` wherever the activated output
/// `a[i] <= 0`. Bitwise identical across kernels.
pub fn relu_backward(g: &mut [f32], a: &[f32]) {
    relu_backward_with(active(), g, a);
}

/// ReLU backward on an explicit kernel.
pub fn relu_backward_with(kind: KernelKind, g: &mut [f32], a: &[f32]) {
    tally(kind);
    debug_assert_eq!(g.len(), a.len());
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::relu_backward(g, a) };
        return;
    }
    let _ = kind;
    scalar::relu_backward(g, a);
}

/// One Adam update over a parameter slice:
/// `m ← β₁m + (1−β₁)g·s`, `v ← β₂v + (1−β₂)(g·s)²`,
/// `p ← p − lr·(m/bc₁)/(√(v/bc₂)+ε)`.
/// Bitwise identical across kernels (the SIMD path avoids FMA on purpose).
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    scale: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    bc1: f32,
    bc2: f32,
) {
    adam_step_with(active(), p, g, m, v, scale, lr, beta1, beta2, epsilon, bc1, bc2);
}

/// Adam step on an explicit kernel.
#[allow(clippy::too_many_arguments)]
pub fn adam_step_with(
    kind: KernelKind,
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    scale: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    bc1: f32,
    bc2: f32,
) {
    tally(kind);
    debug_assert_eq!(p.len(), g.len());
    debug_assert_eq!(p.len(), m.len());
    debug_assert_eq!(p.len(), v.len());
    #[cfg(target_arch = "x86_64")]
    if kind == KernelKind::Simd && simd_available() {
        // SAFETY: AVX2+FMA verified above.
        unsafe { avx2::adam_step(p, g, m, v, scale, lr, beta1, beta2, epsilon, bc1, bc2) };
        return;
    }
    let _ = kind;
    scalar::adam_step(p, g, m, v, scale, lr, beta1, beta2, epsilon, bc1, bc2);
}

// ---------------------------------------------------------------------------
// Scalar kernels: ascending-reduction order, bitwise-stable at every size.
// ---------------------------------------------------------------------------

mod scalar {
    use super::BLOCK_THRESHOLD;

    /// Side length of the register-blocked micro-kernel tile.
    const TILE: usize = 4;

    pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
        if m * kd * n >= BLOCK_THRESHOLD {
            matmul_blocked(a, b, c, m, kd, n);
            return;
        }
        c.fill(0.0);
        for i in 0..m {
            let arow = &a[i * kd..(i + 1) * kd];
            let orow = &mut c[i * n..(i + 1) * n];
            for (k, &av) in arow.iter().enumerate() {
                let brow = &b[k * n..(k + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }

    pub fn matmul_transpose(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
        if m * kd * n >= BLOCK_THRESHOLD {
            matmul_transpose_blocked(a, b, c, m, kd, n);
            return;
        }
        for i in 0..m {
            let arow = &a[i * kd..(i + 1) * kd];
            for j in 0..n {
                let brow = &b[j * kd..(j + 1) * kd];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
    }

    pub fn transpose_matmul<const ACC: bool>(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        kd: usize,
        n: usize,
    ) {
        if m * kd * n >= BLOCK_THRESHOLD {
            transpose_matmul_blocked::<ACC>(a, b, c, m, kd, n);
            return;
        }
        // Per-element local accumulator in ascending-`r` order, added to `C`
        // once: matches the blocked tile and the "compute product, then
        // add_assign" formulation bitwise.
        for i in 0..kd {
            for j in 0..n {
                let mut acc = 0.0f32;
                for r in 0..m {
                    acc += a[r * kd + i] * b[r * n + j];
                }
                if ACC {
                    c[i * n + j] += acc;
                } else {
                    c[i * n + j] = acc;
                }
            }
        }
    }

    /// `C = A · B` with a 4×4 register tile: the 16 partial sums live in
    /// registers across the whole `k` sweep, so `C` sees no memory traffic
    /// in the inner loop and each `a` load feeds four multiply-adds.
    ///
    /// Each output element accumulates in ascending-`k` order — the same
    /// order as the naive `i,k,j` loop — so the two paths agree bitwise.
    fn matmul_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
        let mut i0 = 0;
        while i0 < m {
            let ib = TILE.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let jb = TILE.min(n - j0);
                let mut acc = [[0.0f32; TILE]; TILE];
                if ib == TILE && jb == TILE {
                    for k in 0..kd {
                        let brow = &b[k * n + j0..k * n + j0 + TILE];
                        for di in 0..TILE {
                            let av = a[(i0 + di) * kd + k];
                            for dj in 0..TILE {
                                acc[di][dj] += av * brow[dj];
                            }
                        }
                    }
                } else {
                    for k in 0..kd {
                        let brow = &b[k * n + j0..k * n + j0 + jb];
                        for (di, row) in acc.iter_mut().enumerate().take(ib) {
                            let av = a[(i0 + di) * kd + k];
                            for (dj, &bv) in brow.iter().enumerate() {
                                row[dj] += av * bv;
                            }
                        }
                    }
                }
                for (di, row) in acc.iter().enumerate().take(ib) {
                    let off = (i0 + di) * n + j0;
                    c[off..off + jb].copy_from_slice(&row[..jb]);
                }
                j0 += jb;
            }
            i0 += ib;
        }
    }

    /// `C (+)= Aᵀ · B` (`A` is `m×kd` traversed column-wise, output `kd×n`)
    /// with the same 4×4 register tile; the reduction runs over the shared
    /// row axis `r` in ascending order, matching the naive loop bitwise.
    fn transpose_matmul_blocked<const ACC: bool>(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        kd: usize,
        n: usize,
    ) {
        let mut i0 = 0;
        while i0 < kd {
            let ib = TILE.min(kd - i0);
            let mut j0 = 0;
            while j0 < n {
                let jb = TILE.min(n - j0);
                let mut acc = [[0.0f32; TILE]; TILE];
                if ib == TILE && jb == TILE {
                    for r in 0..m {
                        let arow = &a[r * kd + i0..r * kd + i0 + TILE];
                        let brow = &b[r * n + j0..r * n + j0 + TILE];
                        for di in 0..TILE {
                            let av = arow[di];
                            for dj in 0..TILE {
                                acc[di][dj] += av * brow[dj];
                            }
                        }
                    }
                } else {
                    for r in 0..m {
                        let arow = &a[r * kd + i0..r * kd + i0 + ib];
                        let brow = &b[r * n + j0..r * n + j0 + jb];
                        for (di, row) in acc.iter_mut().enumerate().take(ib) {
                            let av = arow[di];
                            for (dj, &bv) in brow.iter().enumerate() {
                                row[dj] += av * bv;
                            }
                        }
                    }
                }
                for (di, row) in acc.iter().enumerate().take(ib) {
                    let off = (i0 + di) * n + j0;
                    if ACC {
                        for (cell, &v) in c[off..off + jb].iter_mut().zip(row.iter()) {
                            *cell += v;
                        }
                    } else {
                        c[off..off + jb].copy_from_slice(&row[..jb]);
                    }
                }
                j0 += jb;
            }
            i0 += ib;
        }
    }

    /// `C = A · Bᵀ` (both operands `…×kd` row-major, output `m×n` where `n`
    /// is `B`'s row count): 16 dot products advance together over `k`,
    /// reusing each loaded `a`/`b` value four times. Ascending-`k`
    /// accumulation keeps the result bitwise equal to the naive loop.
    fn matmul_transpose_blocked(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        kd: usize,
        n: usize,
    ) {
        let mut i0 = 0;
        while i0 < m {
            let ib = TILE.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let jb = TILE.min(n - j0);
                let mut acc = [[0.0f32; TILE]; TILE];
                if ib == TILE && jb == TILE {
                    for k in 0..kd {
                        for di in 0..TILE {
                            let av = a[(i0 + di) * kd + k];
                            for dj in 0..TILE {
                                acc[di][dj] += av * b[(j0 + dj) * kd + k];
                            }
                        }
                    }
                } else {
                    for k in 0..kd {
                        for (di, row) in acc.iter_mut().enumerate().take(ib) {
                            let av = a[(i0 + di) * kd + k];
                            for (dj, cell) in row.iter_mut().enumerate().take(jb) {
                                *cell += av * b[(j0 + dj) * kd + k];
                            }
                        }
                    }
                }
                for (di, row) in acc.iter().enumerate().take(ib) {
                    let off = (i0 + di) * n + j0;
                    c[off..off + jb].copy_from_slice(&row[..jb]);
                }
                j0 += jb;
            }
            i0 += ib;
        }
    }

    pub fn add_bias(x: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        for row in x.chunks_exact_mut(bias.len()) {
            for (xv, &bv) in row.iter_mut().zip(bias.iter()) {
                *xv += bv;
            }
        }
    }

    pub fn relu_forward(x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }

    pub fn relu_backward(g: &mut [f32], a: &[f32]) {
        for (gv, &av) in g.iter_mut().zip(a.iter()) {
            if av <= 0.0 {
                *gv = 0.0;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn adam_step(
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        scale: f32,
        lr: f32,
        beta1: f32,
        beta2: f32,
        epsilon: f32,
        bc1: f32,
        bc2: f32,
    ) {
        for i in 0..p.len() {
            let gi = g[i] * scale;
            m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
            v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            p[i] -= lr * mhat / (vhat.sqrt() + epsilon);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernels. Callers verify feature support before dispatching here.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal sum of an 8-lane vector.
    #[target_feature(enable = "avx2,fma")]
    fn hsum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }

    /// `C = A·B`: 4-row × 16-column register tile (8 FMA chains) with
    /// 8-wide and scalar column remainders, then single-row remainder.
    #[target_feature(enable = "avx2,fma")]
    pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let mut j = 0;
            while j + 16 <= n {
                let mut acc = [_mm256_setzero_ps(); 8];
                for k in 0..kd {
                    // SAFETY: k < kd, j+16 <= n, i+4 <= m keep every index
                    // inside the asserted m×kd / kd×n bounds.
                    let (b0, b1) = unsafe {
                        (_mm256_loadu_ps(bp.add(k * n + j)), _mm256_loadu_ps(bp.add(k * n + j + 8)))
                    };
                    for r in 0..4 {
                        // SAFETY: (i+r)*kd + k < m*kd.
                        let av = unsafe { _mm256_broadcast_ss(&*ap.add((i + r) * kd + k)) };
                        acc[r * 2] = _mm256_fmadd_ps(av, b0, acc[r * 2]);
                        acc[r * 2 + 1] = _mm256_fmadd_ps(av, b1, acc[r * 2 + 1]);
                    }
                }
                for r in 0..4 {
                    // SAFETY: (i+r)*n + j + 16 <= m*n.
                    unsafe {
                        _mm256_storeu_ps(cp.add((i + r) * n + j), acc[r * 2]);
                        _mm256_storeu_ps(cp.add((i + r) * n + j + 8), acc[r * 2 + 1]);
                    }
                }
                j += 16;
            }
            while j + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                for k in 0..kd {
                    // SAFETY: in-bounds per the same argument as above.
                    let b0 = unsafe { _mm256_loadu_ps(bp.add(k * n + j)) };
                    for (r, accr) in acc.iter_mut().enumerate() {
                        // SAFETY: (i+r)*kd + k < m*kd.
                        let av = unsafe { _mm256_broadcast_ss(&*ap.add((i + r) * kd + k)) };
                        *accr = _mm256_fmadd_ps(av, b0, *accr);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    // SAFETY: (i+r)*n + j + 8 <= m*n.
                    unsafe { _mm256_storeu_ps(cp.add((i + r) * n + j), *accr) };
                }
                j += 8;
            }
            while j < n {
                for r in i..i + 4 {
                    let mut acc = 0.0f32;
                    for k in 0..kd {
                        acc += a[r * kd + k] * b[k * n + j];
                    }
                    c[r * n + j] = acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for k in 0..kd {
                    // SAFETY: i < m, k < kd, j+8 <= n.
                    let av = unsafe { _mm256_broadcast_ss(&*ap.add(i * kd + k)) };
                    let b0 = unsafe { _mm256_loadu_ps(bp.add(k * n + j)) };
                    acc = _mm256_fmadd_ps(av, b0, acc);
                }
                // SAFETY: i*n + j + 8 <= m*n.
                unsafe { _mm256_storeu_ps(cp.add(i * n + j), acc) };
                j += 8;
            }
            while j < n {
                let mut acc = 0.0f32;
                for k in 0..kd {
                    acc += a[i * kd + k] * b[k * n + j];
                }
                c[i * n + j] = acc;
                j += 1;
            }
            i += 1;
        }
    }

    /// `C = A·Bᵀ`: four dot products share each 8-wide `A` load; the
    /// reduction tail over `kd % 8` runs scalar after the horizontal sum.
    #[target_feature(enable = "avx2,fma")]
    pub fn matmul_transpose(a: &[f32], b: &[f32], c: &mut [f32], m: usize, kd: usize, n: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let kv = kd - kd % 8;
        for i in 0..m {
            let mut j = 0;
            while j + 4 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                let mut k = 0;
                while k < kv {
                    // SAFETY: i < m, j+4 <= n, k+8 <= kd.
                    let av = unsafe { _mm256_loadu_ps(ap.add(i * kd + k)) };
                    for (jj, accj) in acc.iter_mut().enumerate() {
                        let bv = unsafe { _mm256_loadu_ps(bp.add((j + jj) * kd + k)) };
                        *accj = _mm256_fmadd_ps(av, bv, *accj);
                    }
                    k += 8;
                }
                for (jj, accj) in acc.iter().enumerate() {
                    let mut sum = hsum(*accj);
                    for kk in kv..kd {
                        sum += a[i * kd + kk] * b[(j + jj) * kd + kk];
                    }
                    c[i * n + j + jj] = sum;
                }
                j += 4;
            }
            while j < n {
                let mut acc = _mm256_setzero_ps();
                let mut k = 0;
                while k < kv {
                    // SAFETY: i < m, j < n, k+8 <= kd.
                    let av = unsafe { _mm256_loadu_ps(ap.add(i * kd + k)) };
                    let bv = unsafe { _mm256_loadu_ps(bp.add(j * kd + k)) };
                    acc = _mm256_fmadd_ps(av, bv, acc);
                    k += 8;
                }
                let mut sum = hsum(acc);
                for kk in kv..kd {
                    sum += a[i * kd + kk] * b[j * kd + kk];
                }
                c[i * n + j] = sum;
                j += 1;
            }
        }
    }

    /// `C (+)= Aᵀ·B`: 4 rows of `C` × 8 columns per tile; the four `A`
    /// column values per `r` are contiguous in memory.
    #[target_feature(enable = "avx2,fma")]
    pub fn transpose_matmul<const ACC: bool>(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        kd: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= kd {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                for r in 0..m {
                    // SAFETY: r < m, j+8 <= n, i+4 <= kd.
                    let bv = unsafe { _mm256_loadu_ps(bp.add(r * n + j)) };
                    for (di, acci) in acc.iter_mut().enumerate() {
                        let av = unsafe { _mm256_broadcast_ss(&*ap.add(r * kd + i + di)) };
                        *acci = _mm256_fmadd_ps(av, bv, *acci);
                    }
                }
                for (di, acci) in acc.iter().enumerate() {
                    // SAFETY: (i+di)*n + j + 8 <= kd*n.
                    unsafe {
                        let dst = cp.add((i + di) * n + j);
                        let out =
                            if ACC { _mm256_add_ps(_mm256_loadu_ps(dst), *acci) } else { *acci };
                        _mm256_storeu_ps(dst, out);
                    }
                }
                j += 8;
            }
            while j < n {
                for di in 0..4 {
                    let mut acc = 0.0f32;
                    for r in 0..m {
                        acc += a[r * kd + i + di] * b[r * n + j];
                    }
                    let cell = &mut c[(i + di) * n + j];
                    if ACC {
                        *cell += acc;
                    } else {
                        *cell = acc;
                    }
                }
                j += 1;
            }
            i += 4;
        }
        while i < kd {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for r in 0..m {
                    // SAFETY: r < m, i < kd, j+8 <= n.
                    let av = unsafe { _mm256_broadcast_ss(&*ap.add(r * kd + i)) };
                    let bv = unsafe { _mm256_loadu_ps(bp.add(r * n + j)) };
                    acc = _mm256_fmadd_ps(av, bv, acc);
                }
                // SAFETY: i*n + j + 8 <= kd*n.
                unsafe {
                    let dst = cp.add(i * n + j);
                    let out = if ACC { _mm256_add_ps(_mm256_loadu_ps(dst), acc) } else { acc };
                    _mm256_storeu_ps(dst, out);
                }
                j += 8;
            }
            while j < n {
                let mut acc = 0.0f32;
                for r in 0..m {
                    acc += a[r * kd + i] * b[r * n + j];
                }
                let cell = &mut c[i * n + j];
                if ACC {
                    *cell += acc;
                } else {
                    *cell = acc;
                }
                j += 1;
            }
            i += 1;
        }
    }

    /// Broadcast row add; element-wise `add_ps` keeps it bitwise equal to
    /// the scalar loop.
    #[target_feature(enable = "avx2,fma")]
    pub fn add_bias(x: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        let cols = bias.len();
        let bp = bias.as_ptr();
        let cv = cols - cols % 8;
        for row in x.chunks_exact_mut(cols) {
            let rp = row.as_mut_ptr();
            let mut j = 0;
            while j < cv {
                // SAFETY: j+8 <= cols bounds both the row and bias loads.
                unsafe {
                    let xv = _mm256_loadu_ps(rp.add(j));
                    let bv = _mm256_loadu_ps(bp.add(j));
                    _mm256_storeu_ps(rp.add(j), _mm256_add_ps(xv, bv));
                }
                j += 8;
            }
            for jj in j..cols {
                row[jj] += bias[jj];
            }
        }
    }

    /// `x = max(x, 0)`; `max_ps(x, 0)` returns 0 when `x` is NaN, matching
    /// the scalar `if x > 0.0 { x } else { 0.0 }` exactly.
    #[target_feature(enable = "avx2,fma")]
    pub fn relu_forward(x: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let xp = x.as_mut_ptr();
        let nv = x.len() - x.len() % 8;
        let mut i = 0;
        while i < nv {
            // SAFETY: i+8 <= x.len().
            unsafe {
                let v = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(xp.add(i), _mm256_max_ps(v, zero));
            }
            i += 8;
        }
        for v in &mut x[nv..] {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }

    /// Zeroes `g` where `a <= 0`; `_CMP_NLE_UQ` keeps the gradient when `a`
    /// is NaN, matching the scalar `if a <= 0.0 { g = 0.0 }` exactly.
    #[target_feature(enable = "avx2,fma")]
    pub fn relu_backward(g: &mut [f32], a: &[f32]) {
        let zero = _mm256_setzero_ps();
        let gp = g.as_mut_ptr();
        let ap = a.as_ptr();
        let nv = g.len() - g.len() % 8;
        let mut i = 0;
        while i < nv {
            // SAFETY: i+8 <= g.len() == a.len().
            unsafe {
                let av = _mm256_loadu_ps(ap.add(i));
                let gv = _mm256_loadu_ps(gp.add(i));
                let keep = _mm256_cmp_ps::<_CMP_NLE_UQ>(av, zero);
                _mm256_storeu_ps(gp.add(i), _mm256_and_ps(gv, keep));
            }
            i += 8;
        }
        for (gv, &av) in g[nv..].iter_mut().zip(&a[nv..]) {
            if av <= 0.0 {
                *gv = 0.0;
            }
        }
    }

    /// Vectorized Adam update. Deliberately mul+add (no FMA): every lane
    /// performs the identical rounding sequence as the scalar kernel, so
    /// scalar and SIMD optimizer steps agree bitwise.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub fn adam_step(
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        scale: f32,
        lr: f32,
        beta1: f32,
        beta2: f32,
        epsilon: f32,
        bc1: f32,
        bc2: f32,
    ) {
        let n = p.len();
        let nv = n - n % 8;
        let (pp, gp, mp, vp) = (p.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
        let vscale = _mm256_set1_ps(scale);
        let vlr = _mm256_set1_ps(lr);
        let vb1 = _mm256_set1_ps(beta1);
        let vb2 = _mm256_set1_ps(beta2);
        let vomb1 = _mm256_set1_ps(1.0 - beta1);
        let vomb2 = _mm256_set1_ps(1.0 - beta2);
        let veps = _mm256_set1_ps(epsilon);
        let vbc1 = _mm256_set1_ps(bc1);
        let vbc2 = _mm256_set1_ps(bc2);
        let mut i = 0;
        while i < nv {
            // SAFETY: i+8 <= n bounds every slice access.
            unsafe {
                let gi = _mm256_mul_ps(_mm256_loadu_ps(gp.add(i)), vscale);
                let mi = _mm256_add_ps(
                    _mm256_mul_ps(vb1, _mm256_loadu_ps(mp.add(i))),
                    _mm256_mul_ps(vomb1, gi),
                );
                let vi = _mm256_add_ps(
                    _mm256_mul_ps(vb2, _mm256_loadu_ps(vp.add(i))),
                    _mm256_mul_ps(_mm256_mul_ps(vomb2, gi), gi),
                );
                _mm256_storeu_ps(mp.add(i), mi);
                _mm256_storeu_ps(vp.add(i), vi);
                let mhat = _mm256_div_ps(mi, vbc1);
                let vhat = _mm256_div_ps(vi, vbc2);
                let denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
                let upd = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
                _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), upd));
            }
            i += 8;
        }
        for i in nv..n {
            let gi = g[i] * scale;
            m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
            v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            p[i] -= lr * mhat / (vhat.sqrt() + epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, salt: u32) -> Vec<f32> {
        (0..len).map(|i| ((i as u32 ^ salt) % 17) as f32 - 8.0).collect()
    }

    #[test]
    fn choice_parse_roundtrip() {
        for c in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Simd] {
            assert_eq!(KernelChoice::parse(c.label()), Some(c));
        }
        assert_eq!(KernelChoice::parse("avx512"), None);
    }

    #[test]
    fn scalar_matmul_matches_reference_across_threshold() {
        for (m, kd, n) in [(3, 5, 4), (17, 19, 23), (16, 16, 16)] {
            let a = patterned(m * kd, 3);
            let b = patterned(kd * n, 7);
            let mut c = vec![f32::NAN; m * n]; // stale scratch must be overwritten
            matmul_with(KernelKind::Scalar, &a, &b, &mut c, m, kd, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..kd {
                        acc += a[i * kd + k] * b[k * n + j];
                    }
                    assert_eq!(c[i * n + j].to_bits(), acc.to_bits(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn transpose_matmul_acc_adds_complete_products() {
        let (m, kd, n) = (6, 5, 4);
        let a = patterned(m * kd, 11);
        let b = patterned(m * n, 13);
        let mut base = vec![0.0f32; kd * n];
        transpose_matmul_with(KernelKind::Scalar, &a, &b, &mut base, m, kd, n);
        let mut acc = patterned(kd * n, 17);
        let expect: Vec<f32> = acc.iter().zip(&base).map(|(x, y)| x + y).collect();
        transpose_matmul_acc_with(KernelKind::Scalar, &a, &b, &mut acc, m, kd, n);
        assert_eq!(acc, expect);
    }

    #[test]
    fn elementwise_ops_bitwise_equal_across_kernels() {
        if !simd_available() {
            return;
        }
        let mut xs = patterned(37, 23);
        xs[5] = f32::NAN;
        let mut scalar_relu = xs.clone();
        relu_forward_with(KernelKind::Scalar, &mut scalar_relu);
        let mut simd_relu = xs.clone();
        relu_forward_with(KernelKind::Simd, &mut simd_relu);
        assert_eq!(
            scalar_relu.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            simd_relu.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        let acts = patterned(37, 29);
        let mut gs = patterned(37, 31);
        let mut gv = gs.clone();
        relu_backward_with(KernelKind::Scalar, &mut gs, &acts);
        relu_backward_with(KernelKind::Simd, &mut gv, &acts);
        assert_eq!(gs, gv);

        let bias = patterned(5, 37);
        let mut rows_s = patterned(20, 41);
        let mut rows_v = rows_s.clone();
        add_bias_with(KernelKind::Scalar, &mut rows_s, &bias);
        add_bias_with(KernelKind::Simd, &mut rows_v, &bias);
        assert_eq!(rows_s, rows_v);
    }

    #[test]
    fn adam_step_bitwise_equal_across_kernels() {
        if !simd_available() {
            return;
        }
        let n = 203; // odd: exercises the scalar tail
        let g: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin()).collect();
        let mut ps = vec![0.5f32; n];
        let mut ms = vec![0.01f32; n];
        let mut vs = vec![0.002f32; n];
        let (mut pv, mut mv, mut vv) = (ps.clone(), ms.clone(), vs.clone());
        for t in 1..=3 {
            let bc1 = 1.0 - 0.9f32.powi(t);
            let bc2 = 1.0 - 0.999f32.powi(t);
            adam_step_with(
                KernelKind::Scalar,
                &mut ps,
                &g,
                &mut ms,
                &mut vs,
                0.7,
                0.01,
                0.9,
                0.999,
                1e-8,
                bc1,
                bc2,
            );
            adam_step_with(
                KernelKind::Simd,
                &mut pv,
                &g,
                &mut mv,
                &mut vv,
                0.7,
                0.01,
                0.9,
                0.999,
                1e-8,
                bc1,
                bc2,
            );
        }
        assert_eq!(
            ps.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            pv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dispatch_tally_counts_effective_path() {
        // Tallies are process-global; measure deltas so parallel tests
        // only ever inflate them.
        let (s0, v0) = dispatch_tally();
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![0.0f32; 4];
        matmul_with(KernelKind::Scalar, &a, &b, &mut c, 2, 2, 2);
        let (s1, _) = dispatch_tally();
        assert!(s1 > s0, "scalar dispatch must tally");
        if simd_available() {
            matmul_with(KernelKind::Simd, &a, &b, &mut c, 2, 2, 2);
            let (_, v1) = dispatch_tally();
            assert!(v1 > v0, "simd dispatch must tally");
        } else {
            // Simd request downgrades to scalar — and tallies as scalar.
            matmul_with(KernelKind::Simd, &a, &b, &mut c, 2, 2, 2);
            let (s2, v1) = dispatch_tally();
            assert!(s2 > s1);
            assert_eq!(v1, v0);
        }
    }
}
