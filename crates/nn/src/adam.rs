//! Adam optimizer (Kingma & Ba, 2014), matching the paper's settings
//! (`lr = 0.01` by default).

use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Configuration of an [`Adam`] optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (paper default 0.01).
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
    /// Optional global gradient-norm clip (disabled when `None`).
    pub grad_clip: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            grad_clip: Some(0.5),
        }
    }
}

/// Adam state for one network.
///
/// The optimizer lazily sizes its moment buffers on the first
/// [`Adam::step`], so it can be constructed before the network.
///
/// # Examples
///
/// ```
/// use marl_nn::{adam::{Adam, AdamConfig}, mlp::Mlp, matrix::Matrix, rng};
/// let mut rng = rng::seeded(0);
/// let mut net = Mlp::two_layer_relu(4, 2, &mut rng);
/// let mut opt = Adam::new(AdamConfig::default());
/// net.zero_grad();
/// net.forward(&Matrix::zeros(1, 4));
/// net.backward(&Matrix::zeros(1, 2));
/// opt.step(&mut net);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Convenience constructor with only the learning rate overridden.
    pub fn with_learning_rate(lr: f32) -> Self {
        Adam::new(AdamConfig { learning_rate: lr, ..AdamConfig::default() })
    }

    /// The active configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update using the gradients accumulated on `net`.
    ///
    /// Gradients are *not* cleared; call [`Mlp::zero_grad`] before the next
    /// backward pass.
    pub fn step(&mut self, net: &mut Mlp) {
        // Size moments lazily.
        let mut total = 0;
        net.visit_params(|p, _| total += p.len());
        if self.m.len() != total {
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
            self.t = 0;
        }
        self.t += 1;

        // Optional global-norm clip.
        let mut scale = 1.0f32;
        if let Some(clip) = self.config.grad_clip {
            let mut sq = 0.0f32;
            net.visit_params(|_, g| sq += g.iter().map(|x| x * x).sum::<f32>());
            let norm = sq.sqrt();
            if norm > clip && norm > 0.0 {
                scale = clip / norm;
            }
        }

        let AdamConfig { learning_rate, beta1, beta2, epsilon, .. } = self.config;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        let mut off = 0;
        let (m, v) = (&mut self.m, &mut self.v);
        // The element-wise update runs on the dispatched kernel; scalar and
        // SIMD paths are bitwise identical (no FMA reassociation).
        net.visit_params(|p, g| {
            let len = p.len();
            crate::kernels::adam_step(
                p,
                g,
                &mut m[off..off + len],
                &mut v[off..off + len],
                scale,
                learning_rate,
                beta1,
                beta2,
                epsilon,
                bc1,
                bc2,
            );
            off += len;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::rng;

    /// Trains y = 2x on a tiny net and checks the loss shrinks.
    #[test]
    fn adam_reduces_regression_loss() {
        let mut r = rng::seeded(11);
        let mut net = Mlp::new(
            &[1, 8, 1],
            crate::activation::Activation::Tanh,
            crate::init::Init::XavierUniform,
            &mut r,
        );
        let mut opt = Adam::with_learning_rate(0.01);
        let x = Matrix::from_rows(&[&[-1.0], &[-0.5], &[0.0], &[0.5], &[1.0]]);
        let y = x.map(|v| 2.0 * v);
        let loss_of = |net: &Mlp| {
            let p = net.forward_inference(&x);
            p.as_slice().iter().zip(y.as_slice()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
                / x.rows() as f32
        };
        let initial = loss_of(&net);
        for _ in 0..300 {
            net.zero_grad();
            let pred = net.forward(&x);
            let mut grad = pred.clone();
            grad.sub_assign(&y);
            grad.scale(2.0 / x.rows() as f32);
            net.backward(&grad);
            opt.step(&mut net);
        }
        let fin = loss_of(&net);
        assert!(fin < initial * 0.05, "initial {initial} final {fin}");
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut r = rng::seeded(12);
        let mut net = Mlp::new(
            &[1, 1],
            crate::activation::Activation::Identity,
            crate::init::Init::Zeros,
            &mut r,
        );
        let mut opt = Adam::new(AdamConfig {
            learning_rate: 1.0,
            grad_clip: Some(0.001),
            ..AdamConfig::default()
        });
        net.zero_grad();
        net.forward(&Matrix::full(1, 1, 1000.0));
        net.backward(&Matrix::full(1, 1, 1000.0));
        opt.step(&mut net);
        // with clipping the first Adam step is bounded by lr regardless of
        // raw gradient magnitude
        let mut params = vec![];
        net.visit_params(|p, _| params.extend_from_slice(p));
        assert!(params.iter().all(|p| p.abs() <= 1.5), "{params:?}");
    }

    #[test]
    fn step_counter_advances() {
        let mut r = rng::seeded(13);
        let mut net = Mlp::two_layer_relu(2, 1, &mut r);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.steps(), 0);
        net.zero_grad();
        net.forward(&Matrix::zeros(1, 2));
        net.backward(&Matrix::zeros(1, 1));
        opt.step(&mut net);
        assert_eq!(opt.steps(), 1);
    }
}
