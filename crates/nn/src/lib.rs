//! # marl-nn
//!
//! Minimal dense neural-network substrate for the MARL systems
//! reproduction: row-major `f32` matrices, fully-connected layers with
//! explicit backpropagation, Adam, losses, and the Gumbel-softmax
//! relaxation used for discrete particle-environment actions.
//!
//! The paper's networks are small ("two-layer ReLU MLP with 64 units per
//! layer"), so a hand-rolled substrate keeps the end-to-end phase structure
//! (action selection, target-Q calculation, Q-loss/P-loss backprop) intact
//! without external tensor dependencies.
//!
//! ## Quickstart
//!
//! ```
//! use marl_nn::{adam::Adam, matrix::Matrix, mlp::Mlp, rng};
//!
//! let mut rng = rng::seeded(0);
//! let mut actor = Mlp::two_layer_relu(16, 5, &mut rng); // Box(16,) -> 5 actions
//! let mut opt = Adam::with_learning_rate(0.01);
//!
//! let obs = Matrix::zeros(1024, 16); // a mini-batch of observations
//! actor.zero_grad();
//! let logits = actor.forward(&obs);
//! actor.backward(&Matrix::zeros(1024, 5)); // dL/dlogits from the critic
//! opt.step(&mut actor);
//! assert_eq!(logits.shape(), (1024, 5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod adam;
pub mod gumbel;
pub mod init;
pub mod kernels;
pub mod linear;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod rng;
pub mod scratch;

pub use activation::Activation;
pub use adam::{Adam, AdamConfig};
pub use init::Init;
pub use kernels::{KernelChoice, KernelKind};
pub use linear::Linear;
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use scratch::Scratch;
