//! Weight initialization schemes for dense layers.

use crate::matrix::Matrix;
use rand::Rng;

/// Initialization scheme applied to a freshly created [`crate::linear::Linear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    #[default]
    XavierUniform,
    /// He/Kaiming uniform for ReLU networks: `U(-a, a)`, `a = sqrt(6 / fan_in)`.
    HeUniform,
    /// All-zero weights (useful for tests and bias-only layers).
    Zeros,
}

impl Init {
    /// Builds a `fan_in × fan_out` weight matrix under this scheme.
    pub fn weights<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                uniform_matrix(fan_in, fan_out, a, rng)
            }
            Init::HeUniform => {
                let a = (6.0 / fan_in.max(1) as f32).sqrt();
                uniform_matrix(fan_in, fan_out, a, rng)
            }
        }
    }
}

fn uniform_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, a: f32, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = rng.gen_range(-a..=a);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn xavier_bounds_hold() {
        let mut r = rng::seeded(5);
        let m = Init::XavierUniform.weights(64, 64, &mut r);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= a));
        // and they are not degenerate
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn zeros_is_zero() {
        let mut r = rng::seeded(5);
        let m = Init::Zeros.weights(4, 3, &mut r);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut r = rng::seeded(6);
        let wide = Init::HeUniform.weights(1000, 4, &mut r);
        let a = (6.0 / 1000.0f32).sqrt();
        assert!(wide.as_slice().iter().all(|x| x.abs() <= a));
    }
}
