//! The served policy: actors lifted out of a MARC checkpoint.
//!
//! Serving needs only the live actor networks — critics, targets, and
//! optimizer state stay behind. A loaded model is immutable and shared
//! as `Arc<PolicyModel>`; hot reload builds a fresh model and swaps the
//! `Arc`, so in-flight batches finish on the generation they started
//! with and no request is ever dropped by a reload.

use marl_algo::checkpoint::{load_checkpoint_with_fallback, Checkpoint};
use marl_algo::error::TrainError;
use marl_nn::mlp::Mlp;
use std::path::Path;

/// An immutable inference model: one greedy actor per agent.
#[derive(Debug)]
pub struct PolicyModel {
    /// Live actor networks, indexed by agent.
    pub actors: Vec<Mlp>,
    /// Serving generation: 0 for the boot load, +1 per hot reload. Echoed
    /// in every response so clients (and the reload-under-load test) can
    /// attribute an answer to a model version.
    pub epoch: u64,
    /// Update iterations recorded in the source checkpoint (diagnostics).
    pub update_iterations: u64,
}

impl PolicyModel {
    /// Lifts the actors out of a decoded checkpoint.
    pub fn from_checkpoint(ckpt: &Checkpoint, epoch: u64) -> Self {
        PolicyModel {
            actors: ckpt.agents.iter().map(|a| a.actor.clone()).collect(),
            epoch,
            update_iterations: ckpt.update_iterations,
        }
    }

    /// Loads a checkpoint file (falling back to its rotated `.prev`
    /// sibling on corruption — the same crash-safety contract training
    /// restores under). Returns the model and whether the fallback was
    /// used.
    ///
    /// # Errors
    ///
    /// [`TrainError::Checkpoint`] when neither file is loadable.
    pub fn load(path: &Path, epoch: u64) -> Result<(Self, bool), TrainError> {
        let (ckpt, _replay, fell_back) = load_checkpoint_with_fallback(path)?;
        Ok((PolicyModel::from_checkpoint(&ckpt, epoch), fell_back))
    }

    /// Number of served agents.
    pub fn num_agents(&self) -> usize {
        self.actors.len()
    }

    /// Observation width of `agent`'s actor.
    pub fn obs_dim(&self, agent: usize) -> usize {
        self.actors[agent].input_dim()
    }

    /// Action count (logit width) of `agent`'s actor.
    pub fn act_dim(&self, agent: usize) -> usize {
        self.actors[agent].output_dim()
    }

    /// Whether `other` serves the same architecture (agent count and all
    /// per-agent dims) — the compatibility gate for hot reload.
    pub fn same_architecture(&self, other: &PolicyModel) -> bool {
        self.num_agents() == other.num_agents()
            && (0..self.num_agents())
                .all(|a| self.obs_dim(a) == other.obs_dim(a) && self.act_dim(a) == other.act_dim(a))
    }
}
