//! The adaptive micro-batcher: coalesce concurrent requests, flush on
//! batch-size B or deadline T µs — whichever comes first.
//!
//! The core is deliberately *virtual-time*: every method takes `now_ns`
//! instead of reading a clock, so the property tests can drive arbitrary
//! arrival interleavings deterministically. The server threads feed it
//! real monotonic time.
//!
//! Requests travel as pooled [`RequestSlot`] boxes: a slot is taken from
//! the pool on arrival, carries the observation into the batch, carries
//! the action/logits back out to the connection's writer, and returns to
//! the pool — no allocation anywhere in the cycle once the pool and the
//! per-slot vectors are warmed.

use marl_obs::context::TraceCtx;
use std::collections::VecDeque;

/// Flush policy and capacity of a [`MicroBatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush once the *oldest* queued request has waited this long (µs).
    pub max_delay_us: u64,
    /// Hard bound on queued requests; pushes beyond it are refused
    /// (callers block — bounded backpressure, never unbounded memory).
    pub queue_capacity: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 32, max_delay_us: 200, queue_capacity: 1024 }
    }
}

/// One in-flight request, pooled and reused.
#[derive(Debug, Default)]
pub struct RequestSlot {
    /// Client-chosen request id, echoed back verbatim.
    pub req_id: u64,
    /// Connection the response must return to.
    pub conn_id: u64,
    /// Target agent index.
    pub agent: u32,
    /// Observation (reused capacity).
    pub obs: Vec<f32>,
    /// Monotonic enqueue timestamp (latency measurement + deadline).
    pub enqueued_at_ns: u64,
    /// Error code (`0` = ok; [`crate::proto::ERR_BAD_AGENT`] /
    /// [`crate::proto::ERR_BAD_OBS_DIM`] bypass inference).
    pub error: u32,
    /// Greedy action index (filled by the engine).
    pub action: u32,
    /// Model generation that answered (filled by the engine).
    pub epoch: u64,
    /// Actor logits for the observation (filled by the engine, reused
    /// capacity).
    pub logits: Vec<f32>,
    /// Client trace context carried through the batch and echoed in the
    /// response ([`TraceCtx::NONE`] for untraced requests).
    pub trace: TraceCtx,
}

impl RequestSlot {
    /// Resets the response fields for reuse (the vectors keep capacity).
    pub fn reset(&mut self) {
        self.req_id = 0;
        self.conn_id = 0;
        self.agent = 0;
        self.obs.clear();
        self.enqueued_at_ns = 0;
        self.error = 0;
        self.action = 0;
        self.epoch = 0;
        self.logits.clear();
        self.trace = TraceCtx::NONE;
    }
}

/// FIFO micro-batcher with a two-condition flush trigger.
#[derive(Debug)]
pub struct MicroBatcher {
    queue: VecDeque<Box<RequestSlot>>,
    config: BatcherConfig,
}

impl MicroBatcher {
    /// An empty batcher with `config`'s policy; the queue is fully
    /// preallocated.
    pub fn new(config: BatcherConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.queue_capacity >= config.max_batch,
            "queue_capacity must hold at least one full batch"
        );
        MicroBatcher { queue: VecDeque::with_capacity(config.queue_capacity), config }
    }

    /// The flush policy in force.
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether another push would be refused.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.queue_capacity
    }

    /// Enqueues a request, stamping its arrival time. Refuses (handing
    /// the slot back) when the queue is at capacity — the caller blocks
    /// and retries after a flush.
    pub fn push(
        &mut self,
        mut slot: Box<RequestSlot>,
        now_ns: u64,
    ) -> Result<(), Box<RequestSlot>> {
        if self.is_full() {
            return Err(slot);
        }
        slot.enqueued_at_ns = now_ns;
        self.queue.push_back(slot);
        Ok(())
    }

    /// Whether a batch should flush now: a full batch is waiting, or the
    /// oldest queued request has reached its delay deadline.
    pub fn ready(&self, now_ns: u64) -> bool {
        if self.queue.len() >= self.config.max_batch {
            return true;
        }
        match self.queue.front() {
            Some(front) => now_ns >= front.enqueued_at_ns + self.config.max_delay_us * 1_000,
            None => false,
        }
    }

    /// The absolute time at which [`MicroBatcher::ready`] will turn true
    /// by deadline alone (`None` when empty). The batcher thread sleeps
    /// until this instant or the next push, whichever is sooner.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.queue.front().map(|f| f.enqueued_at_ns + self.config.max_delay_us * 1_000)
    }

    /// Moves up to `max_batch` requests into `out` in arrival order
    /// (`out` is cleared first; its capacity is reused).
    pub fn drain_into(&mut self, out: &mut Vec<Box<RequestSlot>>) {
        out.clear();
        let n = self.queue.len().min(self.config.max_batch);
        for _ in 0..n {
            out.push(self.queue.pop_front().expect("len checked"));
        }
    }

    /// Moves *every* queued request into `out` (shutdown flush; may
    /// exceed `max_batch`).
    pub fn drain_all_into(&mut self, out: &mut Vec<Box<RequestSlot>>) {
        out.clear();
        while let Some(slot) = self.queue.pop_front() {
            out.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(req_id: u64) -> Box<RequestSlot> {
        Box::new(RequestSlot { req_id, ..RequestSlot::default() })
    }

    fn cfg(max_batch: usize, max_delay_us: u64, cap: usize) -> BatcherConfig {
        BatcherConfig { max_batch, max_delay_us, queue_capacity: cap }
    }

    #[test]
    fn flushes_on_batch_size() {
        let mut b = MicroBatcher::new(cfg(3, 1_000_000, 8));
        assert!(!b.ready(0));
        b.push(slot(1), 10).unwrap();
        b.push(slot(2), 11).unwrap();
        assert!(!b.ready(12), "two of three queued, deadline far away");
        b.push(slot(3), 12).unwrap();
        assert!(b.ready(12), "full batch flushes immediately");
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert_eq!(out.iter().map(|s| s.req_id).collect::<Vec<_>>(), [1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn flushes_on_oldest_deadline() {
        let mut b = MicroBatcher::new(cfg(64, 200, 128));
        b.push(slot(1), 1_000).unwrap();
        b.push(slot(2), 150_000).unwrap();
        assert_eq!(b.next_deadline_ns(), Some(1_000 + 200_000));
        assert!(!b.ready(200_000));
        assert!(b.ready(201_000), "oldest request crossed 200µs");
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert_eq!(out.len(), 2, "deadline flush takes everything queued");
    }

    #[test]
    fn capacity_refusal_hands_the_slot_back() {
        let mut b = MicroBatcher::new(cfg(2, 100, 2));
        b.push(slot(1), 0).unwrap();
        b.push(slot(2), 0).unwrap();
        assert!(b.is_full());
        let refused = b.push(slot(3), 0).unwrap_err();
        assert_eq!(refused.req_id, 3);
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert!(!b.is_full());
        b.push(refused, 5).unwrap();
    }

    #[test]
    fn drain_respects_max_batch_and_order() {
        let mut b = MicroBatcher::new(cfg(2, 100, 8));
        for i in 0..5 {
            b.push(slot(i), i).unwrap();
        }
        let mut out = Vec::new();
        b.drain_into(&mut out);
        assert_eq!(out.iter().map(|s| s.req_id).collect::<Vec<_>>(), [0, 1]);
        b.drain_all_into(&mut out);
        assert_eq!(out.iter().map(|s| s.req_id).collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn slot_reset_keeps_capacity() {
        let mut s = RequestSlot::default();
        s.obs.extend_from_slice(&[1.0; 32]);
        s.logits.extend_from_slice(&[2.0; 8]);
        s.trace = TraceCtx { trace_id: 1, span_id: 2, send_ns: 3 };
        let obs_cap = s.obs.capacity();
        s.reset();
        assert!(s.obs.is_empty());
        assert_eq!(s.obs.capacity(), obs_cap);
        assert!(!s.trace.is_set());
    }
}
