//! `marl-serve`: micro-batched policy inference serving.
//!
//! A serve process loads a MARC checkpoint, lifts out the actor networks
//! ([`model::PolicyModel`]), and answers observation → action requests
//! over the MARD wire format (raw binary frames, [`proto`]) on a Unix
//! socket or TCP — the same transports the distributed runtime uses.
//!
//! The throughput lever is **adaptive micro-batching** ([`batcher`]):
//! concurrent requests from any number of connections coalesce into one
//! batched `forward_inference_into` call on the SIMD kernels, flushed as
//! soon as `max_batch` requests are queued *or* the oldest request has
//! waited `max_delay_us` — whichever comes first. Batching changes the
//! latency/throughput trade-off, never the answers: batched rows are
//! bitwise identical to batch-of-one inference ([`engine`]).
//!
//! The steady-state request path is allocation-free: pooled request
//! slots, reusable per-connection frame buffers, and engine-owned
//! gather/forward/scatter storage (enforced by an allocator-counting
//! test). Hot checkpoint reload swaps the model `Arc` between batches
//! without dropping in-flight requests ([`server`]).

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod model;
pub mod proto;
pub mod server;

pub use batcher::{BatcherConfig, MicroBatcher, RequestSlot};
pub use engine::InferenceEngine;
pub use model::PolicyModel;
pub use server::{ServeConfig, ServeListener, Server};
