//! The batched inference engine: one `forward_inference_into` per agent
//! per micro-batch, then scatter actions/logits back into the slots.
//!
//! All working storage (per-agent observation/logit matrices, row maps,
//! arg-max buffers, `Scratch`) is owned by the engine and reused across
//! batches, so a warmed engine runs the whole gather → forward → scatter
//! cycle without allocating.
//!
//! Bitwise contract: the SIMD and scalar kernels compute each output row
//! of a batched forward pass independently of the other rows (enforced
//! by `batched_greedy_matches_scalar_per_row_bitwise` in `marl-algo`),
//! so the logits written back into a slot are bit-identical to what a
//! batch-of-one inference for that request alone would produce — for
//! *any* interleaving of requests into batches. The serve equivalence
//! test rests on this.

use crate::batcher::RequestSlot;
use crate::model::PolicyModel;
use marl_nn::matrix::Matrix;
use marl_nn::scratch::Scratch;

/// Reusable per-agent working storage.
#[derive(Debug, Default)]
struct AgentBuffers {
    /// Batch indices (into the flush) routed to this agent.
    members: Vec<usize>,
    /// Gathered observations, one row per member.
    obs: Matrix,
    /// Forward output, one logit row per member.
    logits: Matrix,
    /// Row-wise arg-max results.
    argmax: Vec<usize>,
}

/// The batched inference engine.
#[derive(Debug, Default)]
pub struct InferenceEngine {
    agents: Vec<AgentBuffers>,
    scratch: Scratch,
}

impl InferenceEngine {
    /// A fresh engine (buffers warm up over the first batches).
    pub fn new() -> Self {
        InferenceEngine::default()
    }

    /// Runs one micro-batch through `model`, filling each slot's
    /// `action`, `logits`, and `epoch`. Slots with a nonzero `error`
    /// code are passed over (their response is the error frame).
    ///
    /// Requests are grouped by agent and each group runs as one batched
    /// forward pass; results scatter back by the recorded row maps, so
    /// response-to-request attribution is positional and exact.
    pub fn infer(&mut self, model: &PolicyModel, batch: &mut [Box<RequestSlot>]) {
        if self.agents.len() < model.num_agents() {
            self.agents.resize_with(model.num_agents(), AgentBuffers::default);
        }
        for a in 0..model.num_agents() {
            let buf = &mut self.agents[a];
            buf.members.clear();
            for (i, slot) in batch.iter().enumerate() {
                if slot.error == 0 && slot.agent as usize == a {
                    buf.members.push(i);
                }
            }
            if buf.members.is_empty() {
                continue;
            }
            let obs_dim = model.obs_dim(a);
            buf.obs.resize(buf.members.len(), obs_dim);
            for (row, &i) in buf.members.iter().enumerate() {
                buf.obs.row_mut(row).copy_from_slice(&batch[i].obs);
            }
            model.actors[a].forward_inference_into(&buf.obs, &mut buf.logits, &mut self.scratch);
            buf.argmax.clear();
            buf.argmax.resize(buf.members.len(), 0);
            buf.logits.argmax_rows(&mut buf.argmax);
            for (row, &i) in buf.members.iter().enumerate() {
                let slot = &mut batch[i];
                slot.action = buf.argmax[row] as u32;
                slot.epoch = model.epoch;
                slot.logits.clear();
                slot.logits.extend_from_slice(buf.logits.row(row));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::RequestSlot;
    use marl_algo::checkpoint::Checkpoint;
    use marl_algo::{Algorithm, Task, TrainConfig, Trainer};

    fn tiny_model() -> PolicyModel {
        let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3);
        let trainer = Trainer::new(config).expect("trainer");
        let ckpt: Checkpoint = trainer.checkpoint();
        PolicyModel::from_checkpoint(&ckpt, 0)
    }

    fn request(agent: u32, obs: Vec<f32>) -> Box<RequestSlot> {
        Box::new(RequestSlot { agent, obs, ..RequestSlot::default() })
    }

    #[test]
    fn batched_equals_batch_of_one_bitwise_across_agents() {
        let model = tiny_model();
        let obs_dim = model.obs_dim(0);
        let mut engine = InferenceEngine::new();
        // A mixed batch: several requests per agent, interleaved.
        let mut batch: Vec<Box<RequestSlot>> = (0..10)
            .map(|i| {
                let agent = (i % model.num_agents()) as u32;
                let obs: Vec<f32> =
                    (0..obs_dim).map(|c| ((i * 13 + c * 7) % 11) as f32 * 0.09 - 0.4).collect();
                request(agent, obs)
            })
            .collect();
        engine.infer(&model, &mut batch);
        // Each request alone must produce bit-identical logits + action.
        for slot in &batch {
            let mut solo = vec![request(slot.agent, slot.obs.clone())];
            let mut solo_engine = InferenceEngine::new();
            solo_engine.infer(&model, &mut solo);
            assert_eq!(solo[0].logits, slot.logits, "agent {} logits differ", slot.agent);
            assert_eq!(solo[0].action, slot.action);
            assert_eq!(slot.epoch, 0);
        }
    }

    #[test]
    fn errored_slots_are_skipped() {
        let model = tiny_model();
        let obs_dim = model.obs_dim(0);
        let mut engine = InferenceEngine::new();
        let mut batch = vec![
            request(0, vec![0.1; obs_dim]),
            Box::new(RequestSlot {
                agent: 0,
                error: crate::proto::ERR_BAD_OBS_DIM,
                ..RequestSlot::default()
            }),
        ];
        engine.infer(&model, &mut batch);
        assert!(!batch[0].logits.is_empty());
        assert!(batch[1].logits.is_empty(), "errored slot must not be inferred");
    }
}
