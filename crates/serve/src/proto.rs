//! The binary serve protocol riding inside `MARD` frames.
//!
//! The actor–learner protocol serializes JSON because its messages are
//! large and rare; a serve request is a few hundred bytes at high rate,
//! so these payloads are fixed-layout little-endian binary and every
//! encode/decode works against caller-owned reusable buffers — the
//! steady-state request path never allocates.
//!
//! Payload layouts (all integers little-endian). Request and response
//! payloads end in a fixed 24-byte trace-context trailer
//! (`trace_id u64 | span_id u64 | send_ns u64`) so cross-process flow
//! arrows can pair a client's send with the batched forward that served
//! it; untraced callers write [`TraceCtx::NONE`]:
//!
//! ```text
//! KIND_INFER_REQ   req_id u64 | agent u32 | obs_len u32 | obs f32 × obs_len
//!                  | ctx 24 B
//! KIND_INFER_RESP  req_id u64 | epoch u64 | agent u32 | action u32
//!                  | logit_len u32 | logits f32 × logit_len | ctx 24 B
//! KIND_INFER_ERR   req_id u64 | code u32
//! KIND_SERVE_CTL   op u32
//! ```

use marl_dist::wire::{self, KIND_INFER_ERR, KIND_INFER_REQ, KIND_INFER_RESP, KIND_SERVE_CTL};
use marl_dist::DistError;
use marl_obs::context::{TraceCtx, TRACE_CTX_WIRE_LEN};

/// Control op: drain in-flight requests and shut the server down.
pub const CTL_SHUTDOWN: u32 = 1;
/// Control op: liveness probe (acknowledged, otherwise ignored).
pub const CTL_PING: u32 = 2;

/// Error code: the request named an agent index the model does not have.
pub const ERR_BAD_AGENT: u32 = 1;
/// Error code: the observation length does not match the agent's input.
pub const ERR_BAD_OBS_DIM: u32 = 2;

/// Builds a complete inference-request frame into `frame` (cleared and
/// refilled; capacity is reused, so a warmed buffer allocates nothing).
/// Untraced callers pass [`TraceCtx::NONE`].
pub fn encode_request(req_id: u64, agent: u32, obs: &[f32], ctx: TraceCtx, frame: &mut Vec<u8>) {
    wire::begin_raw_frame(frame);
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&agent.to_le_bytes());
    frame.extend_from_slice(&(obs.len() as u32).to_le_bytes());
    for x in obs {
        frame.extend_from_slice(&x.to_le_bytes());
    }
    ctx.write_to(frame);
    wire::finish_raw_frame(KIND_INFER_REQ, frame);
}

/// Decodes an inference-request payload, copying the observation into
/// `obs` (cleared and refilled in place). Returns
/// `(req_id, agent, ctx)`.
///
/// # Errors
///
/// [`DistError::Protocol`] on truncated or inconsistent payloads.
pub fn decode_request_into(
    payload: &[u8],
    obs: &mut Vec<f32>,
) -> Result<(u64, u32, TraceCtx), DistError> {
    if payload.len() < 16 + TRACE_CTX_WIRE_LEN {
        return Err(DistError::Protocol(format!("infer request too short: {}", payload.len())));
    }
    let req_id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let agent = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    let obs_len = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize;
    let body = &payload[16..];
    if body.len() != obs_len * 4 + TRACE_CTX_WIRE_LEN {
        return Err(DistError::Protocol(format!(
            "infer request obs: declared {obs_len} floats, got {} bytes",
            body.len()
        )));
    }
    let ctx = TraceCtx::read_from(body).expect("length checked above");
    obs.clear();
    obs.extend(
        body[..obs_len * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
    );
    Ok((req_id, agent, ctx))
}

/// Builds a complete inference-response frame into `frame`. The trailer
/// echoes the request's trace context so the client can close the flow.
pub fn encode_response(
    req_id: u64,
    epoch: u64,
    agent: u32,
    action: u32,
    logits: &[f32],
    ctx: TraceCtx,
    frame: &mut Vec<u8>,
) {
    wire::begin_raw_frame(frame);
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&epoch.to_le_bytes());
    frame.extend_from_slice(&agent.to_le_bytes());
    frame.extend_from_slice(&action.to_le_bytes());
    frame.extend_from_slice(&(logits.len() as u32).to_le_bytes());
    for x in logits {
        frame.extend_from_slice(&x.to_le_bytes());
    }
    ctx.write_to(frame);
    wire::finish_raw_frame(KIND_INFER_RESP, frame);
}

/// A decoded inference response (logits land in a caller buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Echoed request id.
    pub req_id: u64,
    /// Model generation that answered.
    pub epoch: u64,
    /// Echoed agent index.
    pub agent: u32,
    /// Greedy (arg-max) action index.
    pub action: u32,
    /// Echoed trace context ([`TraceCtx::NONE`] for untraced requests).
    pub ctx: TraceCtx,
}

/// Decodes an inference-response payload, copying the logits into
/// `logits` (cleared and refilled in place).
///
/// # Errors
///
/// [`DistError::Protocol`] on truncated or inconsistent payloads.
pub fn decode_response_into(payload: &[u8], logits: &mut Vec<f32>) -> Result<Response, DistError> {
    if payload.len() < 28 + TRACE_CTX_WIRE_LEN {
        return Err(DistError::Protocol(format!("infer response too short: {}", payload.len())));
    }
    let req_id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let epoch = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let agent = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes"));
    let action = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes"));
    let logit_len = u32::from_le_bytes(payload[24..28].try_into().expect("4 bytes")) as usize;
    let body = &payload[28..];
    if body.len() != logit_len * 4 + TRACE_CTX_WIRE_LEN {
        return Err(DistError::Protocol(format!(
            "infer response logits: declared {logit_len} floats, got {} bytes",
            body.len()
        )));
    }
    let ctx = TraceCtx::read_from(body).expect("length checked above");
    logits.clear();
    logits.extend(
        body[..logit_len * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
    );
    Ok(Response { req_id, epoch, agent, action, ctx })
}

/// Builds a complete inference-error frame into `frame`.
pub fn encode_error(req_id: u64, code: u32, frame: &mut Vec<u8>) {
    wire::begin_raw_frame(frame);
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&code.to_le_bytes());
    wire::finish_raw_frame(KIND_INFER_ERR, frame);
}

/// Decodes an inference-error payload into `(req_id, code)`.
///
/// # Errors
///
/// [`DistError::Protocol`] on truncated payloads.
pub fn decode_error(payload: &[u8]) -> Result<(u64, u32), DistError> {
    if payload.len() != 12 {
        return Err(DistError::Protocol(format!("infer error payload: {} bytes", payload.len())));
    }
    let req_id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let code = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    Ok((req_id, code))
}

/// Builds a complete control frame into `frame`.
pub fn encode_ctl(op: u32, frame: &mut Vec<u8>) {
    wire::begin_raw_frame(frame);
    frame.extend_from_slice(&op.to_le_bytes());
    wire::finish_raw_frame(KIND_SERVE_CTL, frame);
}

/// Decodes a control payload into its op.
///
/// # Errors
///
/// [`DistError::Protocol`] on truncated payloads.
pub fn decode_ctl(payload: &[u8]) -> Result<u32, DistError> {
    if payload.len() != 4 {
        return Err(DistError::Protocol(format!("ctl payload: {} bytes", payload.len())));
    }
    Ok(u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_reuses_buffers() {
        let mut frame = Vec::new();
        let mut obs = Vec::new();
        for round in 0..3u32 {
            let sent: Vec<f32> = (0..5).map(|i| (round * 10 + i) as f32 * 0.5 - 1.0).collect();
            let sent_ctx =
                TraceCtx { trace_id: 7, span_id: round as u64 + 1, send_ns: round as u64 * 10 };
            encode_request(round as u64 + 7, round, &sent, sent_ctx, &mut frame);
            let (kind, payload) = wire::decode_raw_frame(&frame).unwrap();
            assert_eq!(kind, KIND_INFER_REQ);
            let (req_id, agent, ctx) = decode_request_into(payload, &mut obs).unwrap();
            assert_eq!(req_id, round as u64 + 7);
            assert_eq!(agent, round);
            assert_eq!(obs, sent);
            assert_eq!(ctx, sent_ctx);
        }
    }

    #[test]
    fn response_roundtrip() {
        let mut frame = Vec::new();
        let mut logits = Vec::new();
        let sent = [0.25f32, -1.5, 3.75];
        let sent_ctx = TraceCtx { trace_id: 11, span_id: 42, send_ns: 1_000 };
        encode_response(99, 4, 2, 1, &sent, sent_ctx, &mut frame);
        let (kind, payload) = wire::decode_raw_frame(&frame).unwrap();
        assert_eq!(kind, KIND_INFER_RESP);
        let r = decode_response_into(payload, &mut logits).unwrap();
        assert_eq!(r, Response { req_id: 99, epoch: 4, agent: 2, action: 1, ctx: sent_ctx });
        assert_eq!(logits, sent);
    }

    #[test]
    fn untraced_requests_carry_the_none_context() {
        let mut frame = Vec::new();
        let mut obs = Vec::new();
        encode_request(1, 0, &[1.0], TraceCtx::NONE, &mut frame);
        let (_, payload) = wire::decode_raw_frame(&frame).unwrap();
        let (_, _, ctx) = decode_request_into(payload, &mut obs).unwrap();
        assert!(!ctx.is_set());
    }

    #[test]
    fn error_and_ctl_roundtrip() {
        let mut frame = Vec::new();
        encode_error(5, ERR_BAD_OBS_DIM, &mut frame);
        let (kind, payload) = wire::decode_raw_frame(&frame).unwrap();
        assert_eq!(kind, KIND_INFER_ERR);
        assert_eq!(decode_error(payload).unwrap(), (5, ERR_BAD_OBS_DIM));

        encode_ctl(CTL_SHUTDOWN, &mut frame);
        let (kind, payload) = wire::decode_raw_frame(&frame).unwrap();
        assert_eq!(kind, KIND_SERVE_CTL);
        assert_eq!(decode_ctl(payload).unwrap(), CTL_SHUTDOWN);
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        let mut obs = Vec::new();
        assert!(decode_request_into(&[0; 8], &mut obs).is_err());
        // Long enough for the fixed fields but missing the ctx trailer.
        assert!(decode_request_into(&[0; 16], &mut obs).is_err());
        // Declared 3 floats, carries 2.
        let mut frame = Vec::new();
        encode_request(1, 0, &[1.0, 2.0, 3.0], TraceCtx::NONE, &mut frame);
        let (_, payload) = wire::decode_raw_frame(&frame).unwrap();
        let cut = &payload[..payload.len() - 4];
        assert!(decode_request_into(cut, &mut obs).is_err());
        assert!(decode_error(&[0; 3]).is_err());
        assert!(decode_ctl(&[0; 5]).is_err());
    }
}
