//! `marl-serve` — micro-batched policy inference server.
//!
//! ```text
//! marl-serve --checkpoint FILE (--socket PATH | --tcp HOST:PORT)
//!            [--max-batch B] [--max-delay-us T] [--queue-capacity Q]
//!            [--frame-deadline-ms MS] [--reload-poll-ms MS]
//!            [--metrics-out FILE] [--prometheus-out FILE]
//!            [--trace-out FILE]
//! ```
//!
//! Loads the MARC checkpoint (with its `.prev` crash-safety fallback),
//! binds the listener, and serves observation → greedy-action requests
//! until a client sends a `CTL_SHUTDOWN` frame. Concurrent requests
//! coalesce into micro-batches (flush on `--max-batch` requests or when
//! the oldest has waited `--max-delay-us`, whichever first); batching is
//! bitwise-invisible to clients. `--reload-poll-ms` enables hot reload:
//! when the checkpoint file changes, the new model (same architecture)
//! is swapped in between batches — in-flight requests still get answers
//! from the generation that admitted them, and every response carries
//! the serving generation (`epoch`).
//!
//! On exit the final metrics snapshot is printed; `--metrics-out`
//! additionally appends it as JSONL and `--prometheus-out` writes the
//! Prometheus text exposition. `--trace-out` attaches a span tracer to
//! the batcher thread: each batched forward becomes a `serve-forward`
//! span, every traced request (trace-context trailer set) gets a
//! `serve-recv` flow event pairing with the client's send, and the file
//! is a Chrome/Perfetto trace with a `serve` process lane. The last
//! stdout line is the single-line process summary the fleet
//! orchestrator parses.

use marl_obs::metrics::{KernelTally, MetricsRegistry};
use marl_obs::{ProcessSummary, SnapshotContext, Telemetry, TelemetryConfig};
use marl_perf::phase::PhaseProfile;
use marl_serve::{PolicyModel, ServeConfig, ServeListener, Server};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn parse_num(v: &str) -> Result<u64, CliError> {
    v.parse().map_err(|_| CliError(format!("not a number: {v}")))
}

#[derive(Debug, Clone)]
enum Bind {
    Unix(PathBuf),
    Tcp(String),
}

#[derive(Debug)]
struct Cli {
    checkpoint: PathBuf,
    bind: Bind,
    config: ServeConfig,
    metrics_out: Option<PathBuf>,
    prometheus_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut checkpoint: Option<PathBuf> = None;
    let mut bind: Option<Bind> = None;
    let mut config = ServeConfig::default();
    let mut metrics_out = None;
    let mut prometheus_out = None;
    let mut trace_out = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| CliError(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?.into()),
            "--socket" => bind = Some(Bind::Unix(value("--socket")?.into())),
            "--tcp" => bind = Some(Bind::Tcp(value("--tcp")?.clone())),
            "--max-batch" => config.max_batch = parse_num(value("--max-batch")?)? as usize,
            "--max-delay-us" => config.max_delay_us = parse_num(value("--max-delay-us")?)?,
            "--queue-capacity" => {
                config.queue_capacity = parse_num(value("--queue-capacity")?)? as usize;
            }
            "--frame-deadline-ms" => {
                config.frame_deadline =
                    Duration::from_millis(parse_num(value("--frame-deadline-ms")?)?);
            }
            "--reload-poll-ms" => {
                config.reload_poll =
                    Some(Duration::from_millis(parse_num(value("--reload-poll-ms")?)?));
            }
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?.into()),
            "--prometheus-out" => prometheus_out = Some(value("--prometheus-out")?.into()),
            "--trace-out" => trace_out = Some(value("--trace-out")?.into()),
            "--help" | "-h" => return Err(CliError("help".into())),
            v => return Err(CliError(format!("unknown flag {v}"))),
        }
    }
    let Some(checkpoint) = checkpoint else {
        return Err(CliError("--checkpoint is required".into()));
    };
    let Some(bind) = bind else {
        return Err(CliError("one of --socket/--tcp is required".into()));
    };
    if config.max_batch == 0 {
        return Err(CliError("--max-batch must be at least 1".into()));
    }
    if config.queue_capacity < config.max_batch {
        return Err(CliError("--queue-capacity must hold at least one batch".into()));
    }
    Ok(Cli { checkpoint, bind, config, metrics_out, prometheus_out, trace_out })
}

fn usage() {
    eprintln!(
        "usage: marl-serve --checkpoint FILE (--socket PATH | --tcp HOST:PORT)\n\
         \x20                 [--max-batch B] [--max-delay-us T] [--queue-capacity Q]\n\
         \x20                 [--frame-deadline-ms MS] [--reload-poll-ms MS]\n\
         \x20                 [--metrics-out FILE] [--prometheus-out FILE]\n\
         \x20                 [--trace-out FILE]\n\
         \n\
         \x20 --max-batch B        flush a micro-batch at B requests (default 32)\n\
         \x20 --max-delay-us T     ... or once the oldest waited T µs (default 200)\n\
         \x20 --reload-poll-ms MS  watch --checkpoint and hot-swap same-architecture\n\
         \x20                      updates without dropping in-flight requests\n\
         \n\
         Runs until a client sends a CTL_SHUTDOWN control frame."
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(v) => v,
        Err(CliError(msg)) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    let (model, fell_back) = match PolicyModel::load(&cli.checkpoint, 0) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: loading {}: {e}", cli.checkpoint.display());
            return ExitCode::FAILURE;
        }
    };
    if fell_back {
        eprintln!("warning: checkpoint corrupt, serving its .prev fallback");
    }
    println!(
        "serving {} agents (checkpoint @ {} update iterations) on {}",
        model.num_agents(),
        model.update_iterations,
        match &cli.bind {
            Bind::Unix(p) => format!("unix {}", p.display()),
            Bind::Tcp(a) => format!("tcp {a}"),
        }
    );
    println!(
        "micro-batching: flush at {} requests or {} µs | queue {}{}",
        cli.config.max_batch,
        cli.config.max_delay_us,
        cli.config.queue_capacity,
        match cli.config.reload_poll {
            Some(d) => format!(" | hot reload every {} ms", d.as_millis()),
            None => String::new(),
        }
    );

    let listener = match &cli.bind {
        Bind::Unix(path) => ServeListener::unix(path),
        Bind::Tcp(addr) => ServeListener::tcp(addr),
    };
    let listener = match listener {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = listener.local_addr() {
        println!("listening on tcp {addr}");
    }

    let telemetry: Option<Arc<Telemetry>> = match &cli.trace_out {
        Some(path) => {
            let cfg = TelemetryConfig {
                trace_out: Some(path.clone()),
                process_name: Some("serve".to_string()),
                ..TelemetryConfig::default()
            };
            match Telemetry::new(&cfg) {
                Ok(t) => Some(Arc::new(t)),
                Err(e) => {
                    eprintln!("error: opening trace sink failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let server = Server::start_traced(
        listener,
        model,
        cli.config.clone(),
        Arc::clone(&metrics),
        Some(cli.checkpoint.clone()),
        telemetry.clone(),
    );
    // Blocks until a CTL_SHUTDOWN frame arrives and the drain completes:
    // every admitted request is answered before wait() returns.
    server.wait();

    let spans_dropped = telemetry.as_ref().map_or(0, |t| t.tracer.dropped());
    let snap =
        metrics.snapshot(0, true, &PhaseProfile::new(), KernelTally::default(), spans_dropped);
    println!(
        "served {} requests | {} errors | {} reloads | p50 {} ns | p99 {} ns | max {} ns",
        snap.serve_requests,
        snap.serve_errors,
        snap.serve_reloads,
        snap.serve_latency_ns.p50,
        snap.serve_latency_ns.p99,
        snap.serve_latency_ns.max,
    );
    if let Some(path) = &cli.metrics_out {
        let line = serde_json::to_string(&snap).expect("snapshot serializes");
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = write {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &cli.prometheus_out {
        if let Err(e) = std::fs::write(path, marl_obs::prometheus::render(&snap)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    // Drain the trace sink, then report the single-line process summary
    // the fleet orchestrator parses — keep it the last line printed.
    let epoch_unix_ns = telemetry.as_ref().map_or(0, |t| t.tracer.unix_anchor_ns());
    if let Some(t) = &telemetry {
        let _ = t.finish(&SnapshotContext {
            episode: 0,
            profile: &PhaseProfile::new(),
            kernels: KernelTally::default(),
        });
    }
    let summary = ProcessSummary {
        process: "serve".to_string(),
        epoch_unix_ns,
        spans_dropped,
        requests: snap.serve_requests,
        ..ProcessSummary::default()
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
    ExitCode::SUCCESS
}
