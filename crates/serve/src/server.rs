//! The multi-threaded serve runtime: accept loop, per-connection
//! reader/writer threads, the batcher thread, and the hot-reload poller.
//!
//! Request life cycle (all buffers pooled, steady state allocation-free):
//!
//! ```text
//! reader: recv_raw_into(conn buf) → slot from pool → validate → batcher
//! batcher thread: flush on B or T µs → InferenceEngine (one batched
//!                 forward per agent) → scatter slots to conn outboxes
//! writer: pop outbox → encode into conn buf → send_raw → slot to pool
//! ```
//!
//! Backpressure is the slot pool: it holds exactly `queue_capacity +
//! max_batch` slots, so queued + in-flight requests are hard-bounded and
//! a reader whose client outruns the server blocks on the empty pool
//! instead of growing memory.
//!
//! Hot reload swaps the `Arc<PolicyModel>` between batches: a batch
//! captures the Arc once, so every response in it is answered by one
//! generation and in-flight requests are never dropped by a reload.
//!
//! Shutdown (a `CTL_SHUTDOWN` frame or [`Server::shutdown`]) drains:
//! readers stop ingesting, the batcher flushes everything queued in one
//! final oversized batch, writers empty their outboxes, then all threads
//! join. Every accepted request gets its response before the process
//! exits.

use crate::batcher::{BatcherConfig, MicroBatcher, RequestSlot};
use crate::engine::InferenceEngine;
use crate::model::PolicyModel;
use crate::proto;
use marl_dist::wire::{self, KIND_INFER_REQ, KIND_SERVE_CTL};
use marl_dist::{DistError, StreamTransport, TcpAcceptor, UnixAcceptor};
use marl_obs::metrics::MetricsRegistry;
use marl_obs::span::FlowDir;
use marl_obs::telemetry::Telemetry;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// How often blocked waits re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Serve runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batch flush size B.
    pub max_batch: usize,
    /// Micro-batch flush deadline T, microseconds.
    pub max_delay_us: u64,
    /// Batcher queue bound (pool size is this plus one batch).
    pub queue_capacity: usize,
    /// Per-connection mid-frame read deadline. Much shorter than the
    /// dist default: serve frames are small, and a stalled client must
    /// not pin a reader thread.
    pub frame_deadline: Duration,
    /// Poll interval for hot checkpoint reload; `None` disables.
    pub reload_poll: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_delay_us: 200,
            queue_capacity: 1024,
            frame_deadline: Duration::from_secs(1),
            reload_poll: None,
        }
    }
}

/// A bound, not-yet-serving listener (Unix socket or TCP).
#[derive(Debug)]
pub enum ServeListener {
    /// Unix-domain socket listener.
    Unix(UnixAcceptor),
    /// TCP listener.
    Tcp(TcpAcceptor),
}

impl ServeListener {
    /// Binds a Unix socket path (replacing a stale socket file).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn unix(path: &std::path::Path) -> Result<Self, DistError> {
        Ok(ServeListener::Unix(UnixAcceptor::bind(path)?))
    }

    /// Binds a TCP address (`host:port`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn tcp(addr: &str) -> Result<Self, DistError> {
        Ok(ServeListener::Tcp(TcpAcceptor::bind(addr)?))
    }

    /// The bound TCP address (`None` for Unix listeners).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            ServeListener::Unix(_) => None,
            ServeListener::Tcp(t) => t.local_addr().ok(),
        }
    }

    fn try_accept(&mut self) -> Result<Option<StreamTransport>, DistError> {
        match self {
            ServeListener::Unix(a) => a.try_accept_stream(),
            ServeListener::Tcp(a) => a.try_accept_stream(),
        }
    }
}

/// Batcher queue + slot pool behind one lock (they hand slots back and
/// forth, so separate locks would only add ordering hazards).
#[derive(Debug)]
struct Ingress {
    batcher: MicroBatcher,
    // Slots stay boxed end to end (pool → batcher → outbox → pool):
    // every hand-off moves one pointer instead of memcpy'ing the slot's
    // inline fields, and the buffers keep a stable heap identity, which
    // is what the zero-allocation steady-state contract is built on.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<RequestSlot>>,
}

/// One connection's outbox: completed slots awaiting the writer thread.
#[derive(Debug, Default)]
struct ConnOut {
    queue: Mutex<VecDeque<Box<RequestSlot>>>,
    cv: Condvar,
    closed: AtomicBool,
}

/// State shared by every serve thread.
struct Shared {
    model: RwLock<Arc<PolicyModel>>,
    ingress: Mutex<Ingress>,
    /// Signaled on batcher push (wake the batcher), batcher drain (wake
    /// readers blocked on a full queue), and pool return (wake readers
    /// blocked on an empty pool).
    ingress_cv: Condvar,
    conns: Mutex<HashMap<u64, Arc<ConnOut>>>,
    metrics: Arc<MetricsRegistry>,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Set by the batcher thread after the final shutdown flush has been
    /// scattered; writers may exit once their outbox is empty.
    drained: AtomicBool,
    epoch0: Instant,
    /// Attached telemetry: the batcher records `serve-forward` spans and
    /// pairs traced requests' flow arrows on its span tracer. All span
    /// timestamps use the tracer's clock, never `epoch0`.
    obs: Option<Arc<Telemetry>>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch0.elapsed().as_nanos() as u64
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ingress_cv.notify_all();
        let conns = self.conns.lock().expect("conns lock");
        for out in conns.values() {
            out.cv.notify_all();
        }
    }
}

/// A running inference server; dropping it does **not** stop serving —
/// call [`Server::shutdown`] then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Reader/writer threads spawned by the accept loop.
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts serving `model` on `listener`. `checkpoint` is the path
    /// the hot-reload poller watches (ignored unless
    /// `config.reload_poll` is set).
    pub fn start(
        listener: ServeListener,
        model: PolicyModel,
        config: ServeConfig,
        metrics: Arc<MetricsRegistry>,
        checkpoint: Option<PathBuf>,
    ) -> Server {
        Server::start_traced(listener, model, config, metrics, checkpoint, None)
    }

    /// [`Server::start`] with telemetry attached: the batcher records a
    /// `serve-forward` span per batch and a flow-destination marker per
    /// traced request, pairing the merged timeline's client→forward
    /// arrows.
    pub fn start_traced(
        listener: ServeListener,
        model: PolicyModel,
        config: ServeConfig,
        metrics: Arc<MetricsRegistry>,
        checkpoint: Option<PathBuf>,
        obs: Option<Arc<Telemetry>>,
    ) -> Server {
        let max_obs = (0..model.num_agents()).map(|a| model.obs_dim(a)).max().unwrap_or(0);
        let max_act = (0..model.num_agents()).map(|a| model.act_dim(a)).max().unwrap_or(0);
        let pool_size = config.queue_capacity + config.max_batch;
        let pool = (0..pool_size)
            .map(|_| {
                Box::new(RequestSlot {
                    obs: Vec::with_capacity(max_obs),
                    logits: Vec::with_capacity(max_act),
                    ..RequestSlot::default()
                })
            })
            .collect();
        let batcher = MicroBatcher::new(BatcherConfig {
            max_batch: config.max_batch,
            max_delay_us: config.max_delay_us,
            queue_capacity: config.queue_capacity,
        });
        let shared = Arc::new(Shared {
            model: RwLock::new(Arc::new(model)),
            ingress: Mutex::new(Ingress { batcher, pool }),
            ingress_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            metrics,
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            epoch0: Instant::now(),
            obs,
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        handles.push(spawn_named("serve-accept", {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            move || accept_loop(listener, shared, conn_handles)
        }));
        handles.push(spawn_named("serve-batcher", {
            let shared = Arc::clone(&shared);
            move || batcher_loop(shared)
        }));
        if let (Some(interval), Some(path)) = (config.reload_poll, checkpoint) {
            handles.push(spawn_named("serve-reload", {
                let shared = Arc::clone(&shared);
                move || reload_loop(shared, path, interval)
            }));
        }
        Server { shared, handles, conn_handles }
    }

    /// Requests shutdown (idempotent; also triggered by a client
    /// `CTL_SHUTDOWN` frame). In-flight requests still get responses.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The serving model generation (bumps on each hot reload).
    pub fn model_epoch(&self) -> u64 {
        self.shared.model.read().expect("model lock").epoch
    }

    /// The metrics registry the server records into.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Blocks until shutdown completes and every thread has joined.
    pub fn wait(self) {
        for h in self.handles {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("conn handles"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new().name(name.to_owned()).spawn(f).expect("spawn serve thread")
}

fn accept_loop(
    mut listener: ServeListener,
    shared: Arc<Shared>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn_id: u64 = 1;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.try_accept() {
            Ok(Some(transport)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                let transport = transport.with_frame_deadline(shared.config.frame_deadline);
                let Ok(send_half) = transport.try_clone() else {
                    continue; // dup failed: drop the connection
                };
                let out = Arc::new(ConnOut::default());
                shared.conns.lock().expect("conns lock").insert(conn_id, Arc::clone(&out));
                shared
                    .metrics
                    .serve_connections
                    .set(shared.conns.lock().expect("conns lock").len() as f64);
                let mut guard = conn_handles.lock().expect("conn handles");
                guard.push(spawn_named("serve-reader", {
                    let shared = Arc::clone(&shared);
                    let out = Arc::clone(&out);
                    move || reader_loop(transport, conn_id, shared, out)
                }));
                guard.push(spawn_named("serve-writer", {
                    let shared = Arc::clone(&shared);
                    move || writer_loop(send_half, shared, out)
                }));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break, // listener died; shutdown will follow
        }
    }
}

/// Takes a slot from the pool, blocking (bounded backpressure) while it
/// is empty. `None` once shutdown begins.
fn take_slot(shared: &Shared) -> Option<Box<RequestSlot>> {
    let mut ingress = shared.ingress.lock().expect("ingress lock");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(slot) = ingress.pool.pop() {
            return Some(slot);
        }
        let (guard, _) = shared.ingress_cv.wait_timeout(ingress, POLL).expect("ingress wait");
        ingress = guard;
    }
}

/// Returns a slot to the pool and wakes pool/queue waiters.
fn return_slot(shared: &Shared, mut slot: Box<RequestSlot>) {
    slot.reset();
    shared.ingress.lock().expect("ingress lock").pool.push(slot);
    shared.ingress_cv.notify_all();
}

fn reader_loop(
    mut transport: StreamTransport,
    conn_id: u64,
    shared: Arc<Shared>,
    out: Arc<ConnOut>,
) {
    let mut frame = Vec::new();
    // Whether the peer vanished (disconnect / protocol error), as opposed
    // to an orderly shutdown: only a vanished peer closes the outbox —
    // during shutdown the writer must stay up for the final drain.
    let mut peer_gone = false;
    'conn: while !shared.shutdown.load(Ordering::SeqCst) {
        let kind = match transport.recv_raw_into(&mut frame, POLL) {
            Ok(kind) => kind,
            Err(DistError::Timeout { .. }) => continue,
            Err(_) => {
                peer_gone = true;
                break; // disconnect or framing corruption: close
            }
        };
        let payload = &frame[wire::HEADER_LEN..];
        match kind {
            KIND_INFER_REQ => {
                let Some(mut slot) = take_slot(&shared) else { break };
                let (req_id, agent, ctx) = match proto::decode_request_into(payload, &mut slot.obs)
                {
                    Ok(triple) => triple,
                    Err(_) => {
                        return_slot(&shared, slot);
                        peer_gone = true;
                        break; // malformed payload: protocol-fatal
                    }
                };
                slot.req_id = req_id;
                slot.agent = agent;
                slot.conn_id = conn_id;
                slot.trace = ctx;
                slot.error = 0;
                {
                    let model = shared.model.read().expect("model lock");
                    if (agent as usize) >= model.num_agents() {
                        slot.error = proto::ERR_BAD_AGENT;
                    } else if slot.obs.len() != model.obs_dim(agent as usize) {
                        slot.error = proto::ERR_BAD_OBS_DIM;
                    }
                }
                slot.enqueued_at_ns = shared.now_ns();
                if slot.error != 0 {
                    // Error responses skip the batcher entirely.
                    shared.metrics.serve_errors.inc();
                    out.queue.lock().expect("outbox lock").push_back(slot);
                    out.cv.notify_all();
                    continue;
                }
                // Enqueue, blocking while the batcher is at capacity.
                let mut ingress = shared.ingress.lock().expect("ingress lock");
                loop {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        ingress.pool.push(slot);
                        break 'conn;
                    }
                    match ingress.batcher.push(slot, shared.now_ns()) {
                        Ok(()) => break,
                        Err(refused) => {
                            slot = refused;
                            let (guard, _) = shared
                                .ingress_cv
                                .wait_timeout(ingress, POLL)
                                .expect("ingress wait");
                            ingress = guard;
                        }
                    }
                }
                shared.metrics.serve_queue_depth.set(ingress.batcher.len() as f64);
                drop(ingress);
                shared.ingress_cv.notify_all();
            }
            KIND_SERVE_CTL => match proto::decode_ctl(payload) {
                Ok(proto::CTL_SHUTDOWN) => {
                    shared.begin_shutdown();
                    break;
                }
                Ok(_) => {} // ping and unknown ops: connectivity probes
                Err(_) => {
                    peer_gone = true;
                    break;
                }
            },
            _ => {
                peer_gone = true;
                break; // unexpected kind on a serve connection
            }
        }
    }
    if peer_gone {
        // The peer vanished: unregister so the batcher stops scattering
        // here, close the outbox, and recycle anything already queued
        // (the writer may have exited the instant `closed` was set).
        let mut conns = shared.conns.lock().expect("conns lock");
        conns.remove(&conn_id);
        shared.metrics.serve_connections.set(conns.len() as f64);
        drop(conns);
        let orphans: Vec<_> = {
            let mut queue = out.queue.lock().expect("outbox lock");
            out.closed.store(true, Ordering::SeqCst);
            queue.drain(..).collect()
        };
        out.cv.notify_all();
        for slot in orphans {
            return_slot(&shared, slot);
        }
    }
    // On orderly shutdown the connection stays registered: the writer
    // keeps draining until the batcher's final flush lands (`drained`),
    // so every admitted request is answered before the stream closes.
}

fn writer_loop(mut transport: StreamTransport, shared: Arc<Shared>, out: Arc<ConnOut>) {
    let mut frame = Vec::new();
    loop {
        let slot = {
            let mut queue = out.queue.lock().expect("outbox lock");
            loop {
                if let Some(slot) = queue.pop_front() {
                    break slot;
                }
                let done = out.closed.load(Ordering::SeqCst)
                    || (shared.shutdown.load(Ordering::SeqCst)
                        && shared.drained.load(Ordering::SeqCst));
                if done {
                    return;
                }
                let (guard, _) = out.cv.wait_timeout(queue, POLL).expect("outbox wait");
                queue = guard;
            }
        };
        if slot.error != 0 {
            proto::encode_error(slot.req_id, slot.error, &mut frame);
        } else {
            proto::encode_response(
                slot.req_id,
                slot.epoch,
                slot.agent,
                slot.action,
                &slot.logits,
                slot.trace,
                &mut frame,
            );
        }
        let sent = transport.send_raw(&frame).is_ok();
        if sent && slot.error == 0 {
            shared.metrics.serve_requests.inc();
            shared
                .metrics
                .serve_latency_ns
                .record(shared.now_ns().saturating_sub(slot.enqueued_at_ns));
        }
        return_slot(&shared, slot);
        if !sent {
            // Peer is gone: close the outbox (under its lock, so the
            // batcher stops scattering here) and recycle the backlog.
            let orphans: Vec<_> = {
                let mut queue = out.queue.lock().expect("outbox lock");
                out.closed.store(true, Ordering::SeqCst);
                queue.drain(..).collect()
            };
            for slot in orphans {
                return_slot(&shared, slot);
            }
            return;
        }
    }
}

/// Scatters a completed batch to the owning connections' outboxes;
/// slots whose connection has closed go straight back to the pool.
#[allow(clippy::vec_box)] // boxed end to end: see `Ingress::pool`
fn scatter(shared: &Shared, batch: &mut Vec<Box<RequestSlot>>) {
    for slot in batch.drain(..) {
        let target = shared.conns.lock().expect("conns lock").get(&slot.conn_id).cloned();
        match target {
            Some(out) => {
                // `closed` is checked under the queue lock (the reader
                // sets it under the same lock when the peer vanishes),
                // so a slot is either drained by the closing reader or
                // recycled here — never stranded in a dead outbox.
                let mut queue = out.queue.lock().expect("outbox lock");
                if out.closed.load(Ordering::SeqCst) {
                    drop(queue);
                    return_slot(shared, slot);
                } else {
                    queue.push_back(slot);
                    drop(queue);
                    out.cv.notify_all();
                }
            }
            None => return_slot(shared, slot),
        }
    }
}

fn batcher_loop(shared: Arc<Shared>) {
    let mut engine = InferenceEngine::new();
    let mut batch: Vec<Box<RequestSlot>> =
        Vec::with_capacity(shared.config.max_batch.max(shared.config.queue_capacity));
    loop {
        {
            let mut ingress = shared.ingress.lock().expect("ingress lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    ingress.batcher.drain_all_into(&mut batch);
                    break;
                }
                let now = shared.now_ns();
                if ingress.batcher.ready(now) {
                    ingress.batcher.drain_into(&mut batch);
                    break;
                }
                let wait = match ingress.batcher.next_deadline_ns() {
                    Some(deadline) => Duration::from_nanos(deadline.saturating_sub(now).max(1)),
                    None => POLL,
                };
                let (guard, _) =
                    shared.ingress_cv.wait_timeout(ingress, wait.min(POLL)).expect("ingress wait");
                ingress = guard;
            }
            shared.metrics.serve_queue_depth.set(ingress.batcher.len() as f64);
        }
        shared.ingress_cv.notify_all(); // queue space freed
        if !batch.is_empty() {
            let fwd_start = shared.obs.as_ref().map(|t| t.tracer.now_ns());
            let model = Arc::clone(&shared.model.read().expect("model lock"));
            engine.infer(&model, &mut batch);
            if let Some(t) = shared.obs.as_ref() {
                let end = t.tracer.now_ns();
                let start = fwd_start.unwrap_or(end);
                t.tracer.record("serve-forward", 0, start, end);
                for slot in batch.iter() {
                    if slot.trace.is_set() {
                        t.tracer.record_flow(
                            "serve-recv",
                            0,
                            start,
                            end,
                            slot.trace.span_id,
                            FlowDir::In,
                        );
                    }
                }
            }
            shared.metrics.serve_batch_fill.record(batch.len() as u64);
            scatter(&shared, &mut batch);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Everything queued before shutdown has now been scattered.
            shared.drained.store(true, Ordering::SeqCst);
            let conns = shared.conns.lock().expect("conns lock");
            for out in conns.values() {
                out.cv.notify_all();
            }
            return;
        }
    }
}

fn modified(path: &std::path::Path) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

fn reload_loop(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut last_seen = modified(&path);
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(interval.min(POLL));
        let now = modified(&path);
        if now == last_seen || now.is_none() {
            continue;
        }
        let next_epoch = shared.model.read().expect("model lock").epoch + 1;
        match PolicyModel::load(&path, next_epoch) {
            Ok((new_model, _fell_back)) => {
                last_seen = now;
                let current = shared.model.read().expect("model lock");
                if !current.same_architecture(&new_model) {
                    continue; // incompatible checkpoint: keep serving
                }
                drop(current);
                *shared.model.write().expect("model lock") = Arc::new(new_model);
                shared.metrics.serve_reloads.inc();
            }
            Err(_) => {
                // Torn or half-written file: the `.prev` fallback inside
                // `load` already tried too. Keep serving the old model
                // and — by not advancing `last_seen` — retry next tick,
                // so a writer that finishes after our read still lands.
            }
        }
    }
}
