//! Property tests for the micro-batcher, driven in virtual time.
//!
//! A simulated server loop replays random arrival interleavings (random
//! inter-arrival gaps, connection assignments, early connection closes)
//! against random flush policies, mirroring the real batcher thread's
//! discipline: deadline flushes fire exactly at the oldest request's
//! deadline, size flushes fire at push time, refused pushes retry after
//! the flush they force. Invariants:
//!
//! * **No request is lost** — every submitted request appears in exactly
//!   one flush (delivered, or recycled when its connection closed early).
//! * **No request waits past its deadline** — at every non-shutdown
//!   flush, each request's wait is at most `max_delay_us`.
//! * **Responses map to the right connection** — each flushed slot still
//!   carries the `(conn, req)` identity it was submitted with, and FIFO
//!   order is preserved end-to-end.

// Slots are boxed end to end in the real server (pointer-sized
// hand-offs, stable heap identity for the zero-alloc pool); the tests
// mirror that layout.
#![allow(clippy::vec_box)]

use marl_serve::batcher::{BatcherConfig, MicroBatcher, RequestSlot};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Event {
    /// A request arrives on `conn` after `gap_ns`.
    Arrive { gap_ns: u64, conn: u64 },
    /// `conn` closes early; its later flushed slots are recycled.
    Close { conn: u64 },
}

fn event_strategy() -> impl Strategy<Value = Event> {
    // Arrivals outnumber closes ~8:1 (the vendored proptest stub has no
    // `prop_oneof`, so weight by mapping a selector range).
    (0u64..9, 0u64..400_000, 0u64..4).prop_map(|(pick, gap_ns, conn)| {
        if pick < 8 {
            Event::Arrive { gap_ns, conn }
        } else {
            Event::Close { conn }
        }
    })
}

#[derive(Debug)]
struct Flushed {
    conn: u64,
    req: u64,
    wait_ns: u64,
    delivered: bool,
    shutdown_flush: bool,
}

/// Replays `events`, flushing with the real batcher-thread discipline,
/// and returns every flushed slot in flush order.
fn simulate(config: BatcherConfig, events: &[Event]) -> (Vec<Flushed>, u64) {
    let mut b = MicroBatcher::new(config);
    let mut now = 0u64;
    let mut next_req = 0u64;
    let mut closed = BTreeSet::new();
    let mut flushed = Vec::new();
    let mut out: Vec<Box<RequestSlot>> = Vec::new();

    fn flush(
        b: &mut MicroBatcher,
        out: &mut Vec<Box<RequestSlot>>,
        flushed: &mut Vec<Flushed>,
        closed: &BTreeSet<u64>,
        at_ns: u64,
        shutdown_flush: bool,
    ) {
        if shutdown_flush {
            b.drain_all_into(out);
        } else {
            b.drain_into(out);
        }
        for slot in out.drain(..) {
            flushed.push(Flushed {
                conn: slot.conn_id,
                req: slot.req_id,
                wait_ns: at_ns.saturating_sub(slot.enqueued_at_ns),
                delivered: !closed.contains(&slot.conn_id),
                shutdown_flush,
            });
        }
    }

    for event in events {
        match event {
            Event::Arrive { gap_ns, conn } => {
                now += gap_ns;
                // The batcher thread sleeps until the oldest deadline:
                // deadline flushes due before this arrival fire at their
                // exact deadline instants, oldest first.
                while let Some(deadline) = b.next_deadline_ns() {
                    if deadline > now {
                        break;
                    }
                    flush(&mut b, &mut out, &mut flushed, &closed, deadline, false);
                }
                let mut slot = Box::new(RequestSlot {
                    req_id: next_req,
                    conn_id: *conn,
                    ..RequestSlot::default()
                });
                next_req += 1;
                // A refusal means the queue is at capacity >= max_batch,
                // so a size flush is due; the real reader blocks until
                // the batcher drains, then retries.
                while let Err(refused) = b.push(slot, now) {
                    slot = refused;
                    flush(&mut b, &mut out, &mut flushed, &closed, now, false);
                }
                if b.ready(now) {
                    flush(&mut b, &mut out, &mut flushed, &closed, now, false);
                }
            }
            Event::Close { conn } => {
                closed.insert(*conn);
            }
        }
    }
    // Shutdown: one final unbounded drain.
    flush(&mut b, &mut out, &mut flushed, &closed, now, true);
    assert!(b.is_empty());
    (flushed, next_req)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_request_lost_none_late_all_correctly_routed(
        max_batch in 1usize..=8,
        max_delay_us in 1u64..=1_000,
        extra_capacity in 0usize..=8,
        events in proptest::collection::vec(event_strategy(), 1..200),
    ) {
        let config = BatcherConfig {
            max_batch,
            max_delay_us,
            queue_capacity: max_batch + extra_capacity,
        };
        let (flushed, submitted) = simulate(config, &events);

        // No request lost, none duplicated: the flushed stream is exactly
        // the submitted stream, in FIFO order.
        prop_assert_eq!(flushed.len() as u64, submitted);
        for (i, f) in flushed.iter().enumerate() {
            prop_assert_eq!(f.req, i as u64, "FIFO order preserved");
        }

        // No request waits past its deadline at a non-shutdown flush.
        let deadline_ns = max_delay_us * 1_000;
        for f in &flushed {
            if !f.shutdown_flush {
                prop_assert!(
                    f.wait_ns <= deadline_ns,
                    "req {} waited {} ns > deadline {} ns", f.req, f.wait_ns, deadline_ns
                );
            }
        }

        // Responses route to the connection that sent the request, and
        // only closed connections ever have responses recycled.
        let mut expected_conn = BTreeMap::new();
        let mut req = 0u64;
        let mut ever_closed = BTreeSet::new();
        for event in &events {
            match event {
                Event::Arrive { conn, .. } => {
                    expected_conn.insert(req, *conn);
                    req += 1;
                }
                Event::Close { conn } => {
                    ever_closed.insert(*conn);
                }
            }
        }
        for f in &flushed {
            prop_assert_eq!(Some(&f.conn), expected_conn.get(&f.req));
            if !f.delivered {
                prop_assert!(ever_closed.contains(&f.conn));
            }
        }
    }

    #[test]
    fn size_flushes_never_exceed_max_batch(
        max_batch in 1usize..=6,
        events in proptest::collection::vec(event_strategy(), 1..120),
    ) {
        // With delay effectively infinite, only size flushes (and the
        // final shutdown drain) occur — each normal flush is exactly one
        // full batch.
        let config = BatcherConfig {
            max_batch,
            max_delay_us: u64::MAX / 2_000,
            queue_capacity: max_batch,
        };
        let (flushed, submitted) = simulate(config, &events);
        prop_assert_eq!(flushed.len() as u64, submitted);
        let normal = flushed.iter().filter(|f| !f.shutdown_flush).count();
        prop_assert_eq!(normal % max_batch, 0, "size flushes are whole batches");
    }
}
