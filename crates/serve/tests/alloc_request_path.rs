//! Proves the zero-allocation claim of the serve request path: once the
//! slot pool, frame buffers, and engine scratch are warmed, the whole
//! steady-state cycle — decode request frame → pooled slot → micro-batch
//! → batched inference → scatter → encode response frame → decode
//! response (client side) → slot reset and return — touches the heap
//! zero times.
//!
//! The cycle is driven single-threaded through the same components the
//! server threads use (the threads only add handoff, not allocation), so
//! the counting allocator isn't polluted by unrelated thread traffic.

// Slots are boxed end to end in the real server (pointer-sized
// hand-offs, stable heap identity for the zero-alloc pool); the tests
// mirror that layout.
#![allow(clippy::vec_box)]

use marl_algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_dist::wire;
use marl_obs::context::{span_id, TraceCtx};
use marl_obs::metrics::MetricsRegistry;
use marl_obs::span::{FlowDir, SpanTracer};
use marl_serve::batcher::{BatcherConfig, MicroBatcher, RequestSlot};
use marl_serve::{proto, InferenceEngine, PolicyModel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One full request wave: `n` requests framed, decoded, batched,
/// inferred, scattered, framed back, decoded client-side, recycled.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    n: usize,
    model: &PolicyModel,
    batcher: &mut MicroBatcher,
    engine: &mut InferenceEngine,
    pool: &mut Vec<Box<RequestSlot>>,
    batch: &mut Vec<Box<RequestSlot>>,
    req_frame: &mut Vec<u8>,
    resp_frame: &mut Vec<u8>,
    obs: &[f32],
    client_logits: &mut Vec<f32>,
    metrics: &MetricsRegistry,
    tracer: &SpanTracer,
) {
    // Ingest: client encodes (trace context attached), server decodes
    // into a pooled slot.
    for i in 0..n {
        let agent = (i % model.num_agents()) as u32;
        let ctx = TraceCtx { trace_id: 0xF1EE7, span_id: span_id(9, i as u64 + 1), send_ns: 10 };
        proto::encode_request(i as u64, agent, obs, ctx, req_frame);
        let mut slot = pool.pop().expect("pool sized for the wave");
        let (req_id, agent, ctx) =
            proto::decode_request_into(&req_frame[wire::HEADER_LEN..], &mut slot.obs)
                .expect("decodes");
        slot.req_id = req_id;
        slot.agent = agent;
        slot.trace = ctx;
        slot.error = 0;
        batcher.push(slot, (i as u64) * 1_000).expect("capacity sized for the wave");
    }
    // Flush + batched inference + scatter, as the batcher thread does.
    while !batcher.is_empty() {
        batcher.drain_into(batch);
        engine.infer(model, batch);
        metrics.serve_batch_fill.record(batch.len() as u64);
        // Flow markers for every traced request, as the batcher records.
        for slot in batch.iter() {
            if slot.trace.is_set() {
                tracer.record_flow("serve-recv", 0, 100, 200, slot.trace.span_id, FlowDir::In);
            }
        }
        // Respond: server encodes (context echoed), client decodes, slot
        // returns to pool.
        for slot in batch.drain(..) {
            proto::encode_response(
                slot.req_id,
                slot.epoch,
                slot.agent,
                slot.action,
                &slot.logits,
                slot.trace,
                resp_frame,
            );
            metrics.serve_requests.inc();
            metrics.serve_latency_ns.record(1_000);
            let resp = proto::decode_response_into(&resp_frame[wire::HEADER_LEN..], client_logits)
                .expect("decodes");
            assert_eq!(resp.req_id, slot.req_id);
            assert_eq!(resp.ctx, slot.trace, "trace context echoes through the response");
            let mut slot = slot;
            slot.reset();
            pool.push(slot);
        }
    }
}

#[test]
fn steady_state_request_path_allocates_nothing() {
    let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3);
    let trainer = Trainer::new(config).expect("trainer");
    let model = PolicyModel::from_checkpoint(&trainer.checkpoint(), 0);
    drop(trainer);

    const WAVE: usize = 24;
    let config = BatcherConfig { max_batch: 8, max_delay_us: 200, queue_capacity: WAVE };
    let mut batcher = MicroBatcher::new(config);
    let mut engine = InferenceEngine::new();
    let metrics = MetricsRegistry::new();
    let max_obs = (0..model.num_agents()).map(|a| model.obs_dim(a)).max().unwrap();
    let max_act = (0..model.num_agents()).map(|a| model.act_dim(a)).max().unwrap();
    let mut pool: Vec<Box<RequestSlot>> = (0..WAVE)
        .map(|_| {
            Box::new(RequestSlot {
                obs: Vec::with_capacity(max_obs),
                logits: Vec::with_capacity(max_act),
                ..RequestSlot::default()
            })
        })
        .collect();
    let mut batch = Vec::with_capacity(config.max_batch);
    let mut req_frame = Vec::new();
    let mut resp_frame = Vec::new();
    let mut client_logits = Vec::new();
    let obs: Vec<f32> = (0..model.obs_dim(0)).map(|c| c as f32 * 0.03 - 0.2).collect();
    // Small ring: overwrite-on-full is part of the steady state and must
    // also be allocation-free.
    let tracer = SpanTracer::new(64);

    // Warm-up waves size every reusable buffer: frame vectors, per-slot
    // vectors, engine matrices and scratch, the drained-batch vector.
    for _ in 0..3 {
        run_wave(
            WAVE,
            &model,
            &mut batcher,
            &mut engine,
            &mut pool,
            &mut batch,
            &mut req_frame,
            &mut resp_frame,
            &obs,
            &mut client_logits,
            &metrics,
            &tracer,
        );
    }

    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        run_wave(
            WAVE,
            &model,
            &mut batcher,
            &mut engine,
            &mut pool,
            &mut batch,
            &mut req_frame,
            &mut resp_frame,
            &obs,
            &mut client_logits,
            &metrics,
            &tracer,
        );
    }
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(
        (ALLOCS.load(Ordering::SeqCst), REALLOCS.load(Ordering::SeqCst)),
        (0, 0),
        "steady-state serve request path must not touch the heap"
    );
    assert_eq!(metrics.serve_requests.get(), 8 * WAVE as u64);
}
