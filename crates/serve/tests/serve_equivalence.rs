//! End-to-end serve correctness over a real Unix socket:
//!
//! * **Bitwise equivalence** — for any interleaving of concurrent
//!   clients into micro-batches, every response's logits and action are
//!   bit-identical to a batch-of-one inference of that request alone.
//! * **Hot reload under load** — swapping the checkpoint mid-stream
//!   loses no request, and every response is bitwise attributable to
//!   exactly one model generation (the `epoch` it reports).
//! * **Clean shutdown** — a `CTL_SHUTDOWN` frame drains every admitted
//!   request before the server exits.
//! * **Typed rejection** — bad agent ids and wrong observation widths
//!   come back as error frames, not dropped connections.

use marl_algo::checkpoint::{write_checkpoint_file, Checkpoint};
use marl_algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_dist::wire::{KIND_INFER_ERR, KIND_INFER_RESP};
use marl_dist::StreamTransport;
use marl_obs::metrics::MetricsRegistry;
use marl_serve::batcher::RequestSlot;
use marl_serve::{proto, InferenceEngine, PolicyModel, ServeConfig, ServeListener, Server};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tiny_checkpoint(seed: u64) -> Checkpoint {
    let config =
        TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3).with_seed(seed);
    Trainer::new(config).expect("trainer").checkpoint()
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("marl-serve-{tag}-{}.sock", std::process::id()))
}

fn connect(path: &PathBuf) -> StreamTransport {
    // The server's accept loop polls every few ms; retry briefly.
    for _ in 0..100 {
        if let Ok(s) = UnixStream::connect(path) {
            return StreamTransport::unix(s).with_frame_deadline(Duration::from_secs(5));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never came up on {}", path.display());
}

fn deterministic_obs(dim: usize, salt: usize) -> Vec<f32> {
    (0..dim).map(|c| ((salt * 31 + c * 17) % 23) as f32 * 0.05 - 0.5).collect()
}

/// Batch-of-one reference answer straight through the engine.
fn reference(model: &PolicyModel, agent: u32, obs: &[f32]) -> (u32, Vec<f32>) {
    let mut engine = InferenceEngine::new();
    let mut batch =
        vec![Box::new(RequestSlot { agent, obs: obs.to_vec(), ..RequestSlot::default() })];
    engine.infer(model, &mut batch);
    (batch[0].action, std::mem::take(&mut batch[0].logits))
}

fn start_server(
    path: &Path,
    ckpt: &Checkpoint,
    config: ServeConfig,
    watch: Option<PathBuf>,
) -> Server {
    let model = PolicyModel::from_checkpoint(ckpt, 0);
    let listener = ServeListener::unix(path).expect("bind");
    Server::start(listener, model, config, Arc::new(MetricsRegistry::new()), watch)
}

#[test]
fn concurrent_clients_get_bitwise_identical_answers() {
    let ckpt = tiny_checkpoint(7);
    let model = PolicyModel::from_checkpoint(&ckpt, 0);
    let path = sock_path("equiv");
    // Aggressive batching so requests from different clients coalesce.
    let config = ServeConfig {
        max_batch: 8,
        max_delay_us: 2_000,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let server = start_server(&path, &ckpt, config, None);

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    let model = Arc::new(model);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let path = path.clone();
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let mut conn = connect(&path);
                let mut frame = Vec::new();
                let mut logits = Vec::new();
                for i in 0..PER_CLIENT {
                    let agent = ((client + i) % model.num_agents()) as u32;
                    let obs = deterministic_obs(model.obs_dim(agent as usize), client * 1000 + i);
                    let req_id = (client * PER_CLIENT + i) as u64;
                    proto::encode_request(
                        req_id,
                        agent,
                        &obs,
                        marl_obs::context::TraceCtx::NONE,
                        &mut frame,
                    );
                    conn.send_raw(&frame).expect("send");
                    let kind = conn
                        .recv_raw_into(&mut frame, Duration::from_secs(5))
                        .expect("response arrives");
                    assert_eq!(kind, KIND_INFER_RESP);
                    let resp = proto::decode_response_into(
                        &frame[marl_dist::wire::HEADER_LEN..],
                        &mut logits,
                    )
                    .expect("decodes");
                    assert_eq!(resp.req_id, req_id, "response routed to the right request");
                    assert_eq!(resp.agent, agent);
                    assert_eq!(resp.epoch, 0);
                    let (want_action, want_logits) = reference(&model, agent, &obs);
                    assert_eq!(resp.action, want_action, "req {req_id} action");
                    assert_eq!(logits, want_logits, "req {req_id} logits must match bitwise");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_file(&path);
}

/// Communication scenarios give agents segmented heads (movement ⊕
/// utterance) with per-agent logits widths — world-comm's leader speaks
/// while the rest only move, so the served model is genuinely
/// heterogeneous. Micro-batched answers for every agent must still be
/// bit-identical to batch-of-one inference, and each agent's logits must
/// come back at exactly its declared flat action width.
#[test]
fn comm_scenario_heads_serve_bitwise_across_heterogeneous_widths() {
    let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::WorldComm, 3).with_seed(29);
    let env = Task::WorldComm.make_env(3, 25, 29);
    let widths: Vec<usize> = env.action_spaces().iter().map(|s| s.flat_dim()).collect();
    assert!(
        widths.iter().any(|&w| w != widths[0]),
        "world-comm must declare heterogeneous per-agent action widths, got {widths:?}"
    );
    let ckpt = Trainer::new(config).expect("trainer").checkpoint();
    let model = PolicyModel::from_checkpoint(&ckpt, 0);
    let path = sock_path("comm-heads");
    let serve_config = ServeConfig {
        max_batch: 8,
        max_delay_us: 2_000,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let server = start_server(&path, &ckpt, serve_config, None);

    let mut conn = connect(&path);
    let mut frame = Vec::new();
    let mut logits = Vec::new();
    for round in 0..10usize {
        for (agent, &width) in widths.iter().enumerate() {
            let obs = deterministic_obs(model.obs_dim(agent), round * 100 + agent);
            let req_id = (round * model.num_agents() + agent) as u64;
            proto::encode_request(
                req_id,
                agent as u32,
                &obs,
                marl_obs::context::TraceCtx::NONE,
                &mut frame,
            );
            conn.send_raw(&frame).expect("send");
            let kind = conn.recv_raw_into(&mut frame, Duration::from_secs(5)).expect("reply");
            assert_eq!(kind, KIND_INFER_RESP);
            let resp =
                proto::decode_response_into(&frame[marl_dist::wire::HEADER_LEN..], &mut logits)
                    .expect("decodes");
            assert_eq!(resp.req_id, req_id);
            assert_eq!(logits.len(), width, "agent {agent} logits width vs declared action space");
            let (want_action, want_logits) = reference(&model, agent as u32, &obs);
            assert_eq!(resp.action, want_action, "agent {agent} action");
            assert_eq!(logits, want_logits, "agent {agent} logits must match bitwise");
            assert!(
                (resp.action as usize) < env.action_spaces()[agent].joint_count(),
                "agent {agent} action {} within its joint space",
                resp.action
            );
        }
    }
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_requests_get_typed_error_frames() {
    let ckpt = tiny_checkpoint(3);
    let model = PolicyModel::from_checkpoint(&ckpt, 0);
    let path = sock_path("errors");
    let server = start_server(&path, &ckpt, ServeConfig::default(), None);

    let mut conn = connect(&path);
    let mut frame = Vec::new();
    // Agent out of range.
    proto::encode_request(
        1,
        model.num_agents() as u32,
        &[0.0; 4],
        marl_obs::context::TraceCtx::NONE,
        &mut frame,
    );
    conn.send_raw(&frame).expect("send");
    let kind = conn.recv_raw_into(&mut frame, Duration::from_secs(5)).expect("reply");
    assert_eq!(kind, KIND_INFER_ERR);
    let (req_id, code) = proto::decode_error(&frame[marl_dist::wire::HEADER_LEN..]).unwrap();
    assert_eq!((req_id, code), (1, proto::ERR_BAD_AGENT));
    // Wrong observation width for a valid agent.
    let bad_dim = model.obs_dim(0) + 1;
    proto::encode_request(2, 0, &vec![0.0; bad_dim], marl_obs::context::TraceCtx::NONE, &mut frame);
    conn.send_raw(&frame).expect("send");
    let kind = conn.recv_raw_into(&mut frame, Duration::from_secs(5)).expect("reply");
    assert_eq!(kind, KIND_INFER_ERR);
    let (req_id, code) = proto::decode_error(&frame[marl_dist::wire::HEADER_LEN..]).unwrap();
    assert_eq!((req_id, code), (2, proto::ERR_BAD_OBS_DIM));
    // The connection survives errors: a valid request still answers.
    let obs = deterministic_obs(model.obs_dim(0), 9);
    proto::encode_request(3, 0, &obs, marl_obs::context::TraceCtx::NONE, &mut frame);
    conn.send_raw(&frame).expect("send");
    let kind = conn.recv_raw_into(&mut frame, Duration::from_secs(5)).expect("reply");
    assert_eq!(kind, KIND_INFER_RESP);

    server.shutdown();
    server.wait();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_frame_drains_every_admitted_request() {
    let ckpt = tiny_checkpoint(11);
    let model = PolicyModel::from_checkpoint(&ckpt, 0);
    let path = sock_path("drain");
    // A long flush deadline, so the final requests are still queued when
    // the shutdown frame lands — the drain has real work to do.
    let config = ServeConfig {
        max_batch: 64,
        max_delay_us: 500_000,
        queue_capacity: 128,
        ..ServeConfig::default()
    };
    let server = start_server(&path, &ckpt, config, None);

    let mut conn = connect(&path);
    let mut frame = Vec::new();
    const N: u64 = 40;
    for req_id in 0..N {
        let obs = deterministic_obs(model.obs_dim(0), req_id as usize);
        proto::encode_request(req_id, 0, &obs, marl_obs::context::TraceCtx::NONE, &mut frame);
        conn.send_raw(&frame).expect("send");
    }
    proto::encode_ctl(proto::CTL_SHUTDOWN, &mut frame);
    conn.send_raw(&frame).expect("send ctl");

    let mut logits = Vec::new();
    let mut seen = vec![false; N as usize];
    for _ in 0..N {
        let kind = conn
            .recv_raw_into(&mut frame, Duration::from_secs(10))
            .expect("drained response arrives");
        assert_eq!(kind, KIND_INFER_RESP);
        let resp = proto::decode_response_into(&frame[marl_dist::wire::HEADER_LEN..], &mut logits)
            .expect("decodes");
        assert!(!seen[resp.req_id as usize], "req {} answered twice", resp.req_id);
        seen[resp.req_id as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "every admitted request was answered");
    server.wait();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hot_reload_under_load_drops_nothing_and_versions_every_answer() {
    let ckpt0 = tiny_checkpoint(0);
    let ckpt1 = tiny_checkpoint(1);
    let model0 = PolicyModel::from_checkpoint(&ckpt0, 0);
    let model1 = PolicyModel::from_checkpoint(&ckpt1, 1);
    assert!(model0.same_architecture(&model1));

    let dir = std::env::temp_dir().join(format!("marl-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt_path = dir.join("model.marc");
    write_checkpoint_file(&ckpt_path, &ckpt0, &[]).expect("write v0");

    let path = sock_path("reload");
    let config = ServeConfig {
        max_batch: 4,
        max_delay_us: 500,
        queue_capacity: 64,
        reload_poll: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let model_boot = PolicyModel::load(&ckpt_path, 0).expect("load").0;
    let listener = ServeListener::unix(&path).expect("bind");
    let server = Server::start(
        listener,
        model_boot,
        config,
        Arc::new(MetricsRegistry::new()),
        Some(ckpt_path.clone()),
    );

    let mut conn = connect(&path);
    let mut frame = Vec::new();
    let mut logits = Vec::new();
    let mut swapped = false;
    let mut answered = 0u64;
    let mut epochs_seen = [0u64; 2];
    for req_id in 0..400u64 {
        let agent = (req_id % model0.num_agents() as u64) as u32;
        let obs = deterministic_obs(model0.obs_dim(agent as usize), req_id as usize);
        proto::encode_request(req_id, agent, &obs, marl_obs::context::TraceCtx::NONE, &mut frame);
        conn.send_raw(&frame).expect("send");
        let kind = conn.recv_raw_into(&mut frame, Duration::from_secs(5)).expect("reply");
        assert_eq!(kind, KIND_INFER_RESP);
        let resp = proto::decode_response_into(&frame[marl_dist::wire::HEADER_LEN..], &mut logits)
            .expect("decodes");
        assert_eq!(resp.req_id, req_id, "no request lost across the reload");
        // Each answer is bitwise attributable to the generation it names.
        let generation = match resp.epoch {
            0 => &model0,
            1 => &model1,
            other => panic!("unexpected epoch {other}"),
        };
        epochs_seen[resp.epoch as usize] += 1;
        let (want_action, want_logits) = reference(generation, agent, &obs);
        assert_eq!(resp.action, want_action);
        assert_eq!(logits, want_logits, "req {req_id}: logits must match epoch {}", resp.epoch);
        answered += 1;
        if req_id == 50 && !swapped {
            // Swap the checkpoint mid-stream; keep the request flow up.
            write_checkpoint_file(&ckpt_path, &ckpt1, &[]).expect("write v1");
            swapped = true;
        }
        if swapped && resp.epoch == 1 && req_id > 120 {
            break; // reload observed end-to-end
        }
    }
    assert!(swapped);
    assert!(epochs_seen[0] > 0, "some answers from the boot generation");
    assert!(epochs_seen[1] > 0, "reload was picked up under load, got {answered} answers");

    server.shutdown();
    server.wait();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}
