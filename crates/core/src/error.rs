//! Error types of the replay/sampling crate.

use std::error::Error;
use std::fmt;

/// Errors returned by replay storage and samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// An index referenced a row beyond the stored length.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Stored length at the time.
        len: usize,
    },
    /// A sample was requested from an empty buffer.
    EmptyBuffer,
    /// The buffer holds fewer rows than the requested batch.
    NotEnoughSamples {
        /// Rows available.
        available: usize,
        /// Rows requested.
        requested: usize,
    },
    /// The batch size is not compatible with the sampler configuration
    /// (e.g. not divisible by the neighbor count).
    InvalidBatch {
        /// Human-readable reason.
        reason: String,
    },
    /// Multi-agent push with the wrong number of per-agent transitions.
    AgentCountMismatch {
        /// Number of buffers.
        expected: usize,
        /// Transitions supplied.
        got: usize,
    },
    /// A checkpointed sampler state does not fit the sampler it is being
    /// restored into (wrong variant, capacity, or invalid values).
    BadSamplerState {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for buffer of length {len}")
            }
            ReplayError::EmptyBuffer => write!(f, "cannot sample from an empty replay buffer"),
            ReplayError::NotEnoughSamples { available, requested } => {
                write!(f, "requested {requested} samples but only {available} are stored")
            }
            ReplayError::InvalidBatch { reason } => write!(f, "invalid batch request: {reason}"),
            ReplayError::AgentCountMismatch { expected, got } => {
                write!(f, "expected {expected} per-agent transitions but received {got}")
            }
            ReplayError::BadSamplerState { reason } => {
                write!(f, "sampler state cannot be restored: {reason}")
            }
        }
    }
}

impl Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ReplayError::EmptyBuffer.to_string().contains("empty"));
        assert!(ReplayError::NotEnoughSamples { available: 2, requested: 5 }
            .to_string()
            .contains("only 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<ReplayError>();
    }
}
