//! Transition records and batch containers.
//!
//! A transition is the tuple the paper stores per agent per step:
//! `(obs_j, act_j, reward_j, next_obs_j, done_j)`.

use serde::{Deserialize, Serialize};

/// Shape of one agent's transition row inside the replay storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionLayout {
    /// Observation dimension.
    pub obs_dim: usize,
    /// Action dimension (one-hot width for discrete actions).
    pub act_dim: usize,
}

impl TransitionLayout {
    /// Creates a layout.
    pub fn new(obs_dim: usize, act_dim: usize) -> Self {
        TransitionLayout { obs_dim, act_dim }
    }

    /// Flat row width: `obs + act + reward + next_obs + done`.
    pub fn row_width(&self) -> usize {
        self.obs_dim * 2 + self.act_dim + 2
    }

    /// Byte width of a row (`f32` elements).
    pub fn row_bytes(&self) -> usize {
        self.row_width() * std::mem::size_of::<f32>()
    }

    /// Offset of the action segment within a row.
    pub fn act_offset(&self) -> usize {
        self.obs_dim
    }

    /// Offset of the reward scalar within a row.
    pub fn reward_offset(&self) -> usize {
        self.obs_dim + self.act_dim
    }

    /// Offset of the next-observation segment within a row.
    pub fn next_obs_offset(&self) -> usize {
        self.obs_dim + self.act_dim + 1
    }

    /// Offset of the done flag within a row.
    pub fn done_offset(&self) -> usize {
        self.row_width() - 1
    }
}

/// One agent's transition, as pushed into the replay buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation at time t.
    pub obs: Vec<f32>,
    /// Action taken (one-hot or relaxed distribution).
    pub action: Vec<f32>,
    /// Scalar reward.
    pub reward: f32,
    /// Observation at time t+1.
    pub next_obs: Vec<f32>,
    /// Terminal flag (1.0 = episode ended).
    pub done: f32,
}

impl Transition {
    /// Serializes into `out` following `layout`.
    ///
    /// # Panics
    ///
    /// Panics if the component sizes disagree with `layout` or `out` is not
    /// exactly one row wide.
    pub fn write_row(&self, layout: &TransitionLayout, out: &mut [f32]) {
        assert_eq!(self.obs.len(), layout.obs_dim, "obs dim mismatch");
        assert_eq!(self.action.len(), layout.act_dim, "act dim mismatch");
        assert_eq!(self.next_obs.len(), layout.obs_dim, "next_obs dim mismatch");
        assert_eq!(out.len(), layout.row_width(), "row width mismatch");
        let mut off = 0;
        out[off..off + layout.obs_dim].copy_from_slice(&self.obs);
        off += layout.obs_dim;
        out[off..off + layout.act_dim].copy_from_slice(&self.action);
        off += layout.act_dim;
        out[off] = self.reward;
        off += 1;
        out[off..off + layout.obs_dim].copy_from_slice(&self.next_obs);
        off += layout.obs_dim;
        out[off] = self.done;
    }

    /// Deserializes a row written by [`Transition::write_row`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != layout.row_width()`.
    pub fn from_row(layout: &TransitionLayout, row: &[f32]) -> Self {
        assert_eq!(row.len(), layout.row_width(), "row width mismatch");
        Transition {
            obs: row[..layout.obs_dim].to_vec(),
            action: row[layout.act_offset()..layout.act_offset() + layout.act_dim].to_vec(),
            reward: row[layout.reward_offset()],
            next_obs: row[layout.next_obs_offset()..layout.next_obs_offset() + layout.obs_dim]
                .to_vec(),
            done: row[layout.done_offset()],
        }
    }
}

/// A borrowed view of one agent's transition, for allocation-free pushes.
///
/// The owning [`Transition`] forces the caller to materialize `Vec`s per
/// component; the vectorized rollout path instead keeps observations and
/// actions in persistent scratch matrices and pushes rows straight from
/// those borrows.
#[derive(Debug, Clone, Copy)]
pub struct TransitionRef<'a> {
    /// Observation at time t.
    pub obs: &'a [f32],
    /// Action taken (one-hot or relaxed distribution).
    pub action: &'a [f32],
    /// Scalar reward.
    pub reward: f32,
    /// Observation at time t+1.
    pub next_obs: &'a [f32],
    /// Terminal flag (1.0 = episode ended).
    pub done: f32,
}

impl TransitionRef<'_> {
    /// Serializes into `out` following `layout`; identical row format to
    /// [`Transition::write_row`].
    ///
    /// # Panics
    ///
    /// Panics if the component sizes disagree with `layout` or `out` is not
    /// exactly one row wide.
    pub fn write_row(&self, layout: &TransitionLayout, out: &mut [f32]) {
        assert_eq!(self.obs.len(), layout.obs_dim, "obs dim mismatch");
        assert_eq!(self.action.len(), layout.act_dim, "act dim mismatch");
        assert_eq!(self.next_obs.len(), layout.obs_dim, "next_obs dim mismatch");
        assert_eq!(out.len(), layout.row_width(), "row width mismatch");
        let mut off = 0;
        out[off..off + layout.obs_dim].copy_from_slice(self.obs);
        off += layout.obs_dim;
        out[off..off + layout.act_dim].copy_from_slice(self.action);
        off += layout.act_dim;
        out[off] = self.reward;
        off += 1;
        out[off..off + layout.obs_dim].copy_from_slice(self.next_obs);
        off += layout.obs_dim;
        out[off] = self.done;
    }
}

/// A sampled mini-batch for one agent, stored column-contiguously so the
/// trainer can feed it straight into matrix code.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentBatch {
    /// Row layout used to produce this batch.
    pub layout: TransitionLayout,
    /// Batch size.
    pub len: usize,
    /// Observations, `len × obs_dim` row-major.
    pub obs: Vec<f32>,
    /// Actions, `len × act_dim` row-major.
    pub actions: Vec<f32>,
    /// Rewards, `len`.
    pub rewards: Vec<f32>,
    /// Next observations, `len × obs_dim` row-major.
    pub next_obs: Vec<f32>,
    /// Done flags, `len`.
    pub dones: Vec<f32>,
}

impl AgentBatch {
    /// Allocates an empty batch of the given size.
    pub fn with_capacity(layout: TransitionLayout, len: usize) -> Self {
        AgentBatch {
            layout,
            len,
            obs: Vec::with_capacity(len * layout.obs_dim),
            actions: Vec::with_capacity(len * layout.act_dim),
            rewards: Vec::with_capacity(len),
            next_obs: Vec::with_capacity(len * layout.obs_dim),
            dones: Vec::with_capacity(len),
        }
    }

    /// Clears the column vectors and sets the expected batch size, keeping
    /// every vector's capacity so refills are allocation-free.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.obs.clear();
        self.actions.clear();
        self.rewards.clear();
        self.next_obs.clear();
        self.dones.clear();
    }

    /// Appends one serialized row.
    pub fn push_row(&mut self, row: &[f32]) {
        let l = &self.layout;
        self.obs.extend_from_slice(&row[..l.obs_dim]);
        self.actions.extend_from_slice(&row[l.act_offset()..l.act_offset() + l.act_dim]);
        self.rewards.push(row[l.reward_offset()]);
        self.next_obs.extend_from_slice(&row[l.next_obs_offset()..l.next_obs_offset() + l.obs_dim]);
        self.dones.push(row[l.done_offset()]);
    }
}

/// A joint mini-batch: one [`AgentBatch`] per agent, plus optional
/// importance-sampling weights shared across agents (the paper's Lemma 1
/// weights from prioritized sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBatch {
    /// Per-agent batches, indexed by agent id.
    pub agents: Vec<AgentBatch>,
    /// The common indices used against every agent's buffer (Figure 5's
    /// "common indices array").
    pub indices: Vec<usize>,
    /// Importance-sampling weight per batch row (`None` for unbiased
    /// uniform sampling).
    pub weights: Option<Vec<f32>>,
}

impl MultiBatch {
    /// Batch size (rows per agent).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Allocates an empty batch container with capacity for `batch` rows
    /// per agent, for reuse across `sample_into` calls.
    pub fn preallocate(layouts: &[TransitionLayout], batch: usize) -> Self {
        let mut agents: Vec<AgentBatch> =
            layouts.iter().map(|&l| AgentBatch::with_capacity(l, batch)).collect();
        for a in &mut agents {
            a.reset(0);
        }
        MultiBatch { agents, indices: Vec::with_capacity(batch), weights: None }
    }

    /// Clears the rows of every agent batch (capacity retained).
    pub fn clear(&mut self) {
        for a in &mut self.agents {
            a.reset(0);
        }
        self.indices.clear();
        if let Some(w) = &mut self.weights {
            w.clear();
        }
    }

    /// Copies a plan's indices and weights into this batch, reusing the
    /// existing buffers (allocation-free in steady state when the plan's
    /// weight variant is stable across calls).
    pub fn set_plan_meta(&mut self, plan: &crate::indices::SamplePlan) {
        plan.flatten_into(&mut self.indices);
        match (&plan.weights, &mut self.weights) {
            (None, w) => *w = None,
            (Some(src), Some(dst)) => {
                dst.clear();
                dst.extend_from_slice(src);
            }
            (Some(src), w @ None) => *w = Some(src.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_offsets_partition_the_row() {
        let l = TransitionLayout::new(16, 5);
        assert_eq!(l.row_width(), 16 + 5 + 1 + 16 + 1);
        assert_eq!(l.act_offset(), 16);
        assert_eq!(l.reward_offset(), 21);
        assert_eq!(l.next_obs_offset(), 22);
        assert_eq!(l.done_offset(), 38);
        assert_eq!(l.row_bytes(), l.row_width() * 4);
    }

    #[test]
    fn row_roundtrip() {
        let l = TransitionLayout::new(3, 2);
        let t = Transition {
            obs: vec![1.0, 2.0, 3.0],
            action: vec![0.0, 1.0],
            reward: -0.5,
            next_obs: vec![4.0, 5.0, 6.0],
            done: 1.0,
        };
        let mut row = vec![0.0; l.row_width()];
        t.write_row(&l, &mut row);
        assert_eq!(Transition::from_row(&l, &row), t);
    }

    #[test]
    fn agent_batch_accumulates_columns() {
        let l = TransitionLayout::new(2, 1);
        let mut b = AgentBatch::with_capacity(l, 2);
        let t = Transition {
            obs: vec![1.0, 2.0],
            action: vec![0.5],
            reward: 3.0,
            next_obs: vec![4.0, 5.0],
            done: 0.0,
        };
        let mut row = vec![0.0; l.row_width()];
        t.write_row(&l, &mut row);
        b.push_row(&row);
        b.push_row(&row);
        assert_eq!(b.obs, vec![1.0, 2.0, 1.0, 2.0]);
        assert_eq!(b.actions, vec![0.5, 0.5]);
        assert_eq!(b.rewards, vec![3.0, 3.0]);
        assert_eq!(b.dones, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "obs dim mismatch")]
    fn write_row_validates_dims() {
        let l = TransitionLayout::new(3, 2);
        let t = Transition {
            obs: vec![1.0],
            action: vec![0.0, 1.0],
            reward: 0.0,
            next_obs: vec![0.0; 3],
            done: 0.0,
        };
        let mut row = vec![0.0; l.row_width()];
        t.write_row(&l, &mut row);
    }
}
