//! Intra-agent cache locality-aware sampling (Algorithm 1 of the paper).
//!
//! Instead of `batch` fully random rows, the strategy draws `refs` random
//! *reference points* and takes `neighbors` consecutive transitions from
//! each (`refs × neighbors = batch`), converting the gather into a small
//! number of streaming reads that the hardware prefetcher can follow.

use crate::error::ReplayError;
use crate::indices::{SamplePlan, Segment};
use crate::sampler::{check_batch, Sampler};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the locality-aware sampler.
///
/// The paper evaluates two operating points for a batch of 1024:
/// [`LocalityConfig::N16_R64`] (more randomness) and
/// [`LocalityConfig::N64_R16`] (more spatial locality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityConfig {
    /// Consecutive transitions taken per reference point.
    pub neighbors: usize,
}

impl LocalityConfig {
    /// 16 neighbors × 64 reference points (preserves more randomness).
    pub const N16_R64: LocalityConfig = LocalityConfig { neighbors: 16 };
    /// 64 neighbors × 16 reference points (maximizes spatial locality).
    pub const N64_R16: LocalityConfig = LocalityConfig { neighbors: 64 };

    /// Creates a configuration with the given neighbor count.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors == 0`.
    pub fn new(neighbors: usize) -> Self {
        assert!(neighbors > 0, "neighbor count must be positive");
        LocalityConfig { neighbors }
    }

    /// Reference points needed for a batch of `batch` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch` is not divisible by the neighbor count.
    pub fn refs_for_batch(&self, batch: usize) -> Result<usize, ReplayError> {
        if !batch.is_multiple_of(self.neighbors) {
            return Err(ReplayError::InvalidBatch {
                reason: format!("batch {batch} not divisible by neighbor count {}", self.neighbors),
            });
        }
        Ok(batch / self.neighbors)
    }
}

/// Cache locality-aware neighbor sampler.
///
/// # Examples
///
/// ```
/// use marl_core::sampler::{LocalityConfig, LocalitySampler, Sampler};
/// use rand::SeedableRng;
///
/// let mut s = LocalitySampler::new(LocalityConfig::N64_R16);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let plan = s.plan(100_000, 1024, &mut rng)?;
/// assert_eq!(plan.batch_len(), 1024);
/// assert_eq!(plan.random_jumps(), 16); // one jump per reference point
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalitySampler {
    config: LocalityConfig,
}

impl LocalitySampler {
    /// Creates the sampler.
    pub fn new(config: LocalityConfig) -> Self {
        LocalitySampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LocalityConfig {
        &self.config
    }
}

impl Sampler for LocalitySampler {
    fn name(&self) -> String {
        format!("locality-n{}", self.config.neighbors)
    }

    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError> {
        check_batch(len, batch)?;
        let refs = self.config.refs_for_batch(batch)?;
        let n = self.config.neighbors;
        if len < n {
            return Err(ReplayError::NotEnoughSamples { available: len, requested: n });
        }
        // Reference points are uniform over positions where a full run of
        // `n` neighbors fits, keeping `D[idx : idx + neighbors]` in-bounds.
        let segments = (0..refs).map(|_| Segment::run(rng.gen_range(0..=len - n), n)).collect();
        Ok(SamplePlan { segments, weights: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_operating_points() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = LocalitySampler::new(LocalityConfig::N16_R64);
        let p = a.plan(100_000, 1024, &mut rng).unwrap();
        assert_eq!(p.random_jumps(), 64);
        assert_eq!(p.batch_len(), 1024);
        assert!(p.segments.iter().all(|s| s.len == 16));

        let mut b = LocalitySampler::new(LocalityConfig::N64_R16);
        let p = b.plan(100_000, 1024, &mut rng).unwrap();
        assert_eq!(p.random_jumps(), 16);
        assert!(p.segments.iter().all(|s| s.len == 64));
    }

    #[test]
    fn runs_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = LocalitySampler::new(LocalityConfig::new(8));
        for _ in 0..100 {
            let p = s.plan(64, 32, &mut rng).unwrap();
            for seg in &p.segments {
                assert!(seg.start + seg.len <= 64);
            }
        }
    }

    #[test]
    fn indivisible_batch_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = LocalitySampler::new(LocalityConfig::new(7));
        let err = s.plan(2048, 1024, &mut rng).unwrap_err();
        assert!(matches!(err, ReplayError::InvalidBatch { .. }));
    }

    #[test]
    fn buffer_smaller_than_run_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = LocalitySampler::new(LocalityConfig::new(64));
        // len 32 >= batch? choose batch 64 requires len>=64 anyway; use len 64, batch 64,
        // then shrink neighbors larger than len.
        let err = s.plan(32, 64, &mut rng).unwrap_err();
        assert!(matches!(err, ReplayError::NotEnoughSamples { .. }));
    }

    #[test]
    fn run_exactly_fills_buffer() {
        // len == neighbors: the only legal start is 0.
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = LocalitySampler::new(LocalityConfig::new(32));
        let p = s.plan(32, 32, &mut rng).unwrap();
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].start, 0);
        assert_eq!(p.segments[0].len, 32);
    }

    #[test]
    fn sequential_fraction_improves_with_neighbors() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut n4 = LocalitySampler::new(LocalityConfig::new(4));
        let mut n64 = LocalitySampler::new(LocalityConfig::new(64));
        let p4 = n4.plan(100_000, 1024, &mut rng).unwrap();
        let p64 = n64.plan(100_000, 1024, &mut rng).unwrap();
        assert!(p64.sequential_fraction() > p4.sequential_fraction());
    }

    #[test]
    fn reference_points_vary_between_plans() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = LocalitySampler::new(LocalityConfig::new(16));
        let p1 = s.plan(100_000, 1024, &mut rng).unwrap();
        let p2 = s.plan(100_000, 1024, &mut rng).unwrap();
        assert_ne!(p1.segments, p2.segments);
    }
}
