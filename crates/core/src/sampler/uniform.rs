//! Baseline uniform random sampling (the default in MADDPG/MATD3).

use crate::error::ReplayError;
use crate::indices::{SamplePlan, Segment};
use crate::sampler::{check_batch, Sampler};
use rand::rngs::StdRng;
use rand::Rng;

/// The baseline strategy: `batch` indices drawn uniformly at random.
///
/// Every index is an unpredictable address — the access pattern the paper
/// identifies as the sampling-phase bottleneck ("load misses for every
/// reference point in the index array").
///
/// # Examples
///
/// ```
/// use marl_core::sampler::{Sampler, UniformSampler};
/// use rand::SeedableRng;
///
/// let mut s = UniformSampler::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let plan = s.plan(10_000, 1024, &mut rng)?;
/// assert_eq!(plan.batch_len(), 1024);
/// assert_eq!(plan.random_jumps(), 1024);
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct UniformSampler {
    _private: (),
}

impl UniformSampler {
    /// Creates the baseline sampler.
    pub fn new() -> Self {
        UniformSampler { _private: () }
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> String {
        "uniform".to_owned()
    }

    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError> {
        let mut out = SamplePlan::new();
        self.plan_into(len, batch, rng, &mut out)?;
        Ok(out)
    }

    fn plan_into(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
        out: &mut SamplePlan,
    ) -> Result<(), ReplayError> {
        check_batch(len, batch)?;
        out.segments.clear();
        out.weights = None;
        for _ in 0..batch {
            out.segments.push(Segment::single(rng.gen_range(0..len)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn plan_has_no_sequential_runs() {
        let mut s = UniformSampler::new();
        let mut rng = StdRng::seed_from_u64(1);
        let p = s.plan(1000, 64, &mut rng).unwrap();
        assert_eq!(p.batch_len(), 64);
        assert_eq!(p.random_jumps(), 64);
        assert!(p.flatten().iter().all(|&i| i < 1000));
    }

    #[test]
    fn indices_cover_the_buffer() {
        let mut s = UniformSampler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let p = s.plan(10, 1000, &mut rng);
        // batch > len is rejected
        assert!(p.is_err());
        let p = s.plan(1000, 1000, &mut rng).unwrap();
        let idx = p.flatten();
        let distinct: std::collections::HashSet<_> = idx.iter().collect();
        // with replacement, but should still touch a wide range
        assert!(distinct.len() > 500);
    }

    #[test]
    fn empty_buffer_rejected() {
        let mut s = UniformSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(s.plan(0, 4, &mut rng), Err(ReplayError::EmptyBuffer)));
    }

    #[test]
    fn no_weights_for_uniform() {
        let mut s = UniformSampler::new();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(s.plan(100, 10, &mut rng).unwrap().weights.is_none());
    }
}
