//! Mini-batch sampling strategies.
//!
//! Each strategy produces a [`SamplePlan`] — the common indices array an
//! agent trainer applies to every agent's replay buffer — and optionally
//! consumes TD-error feedback to maintain priorities.

pub mod ip_locality;
pub mod locality;
pub mod per;
pub mod reuse;
pub mod uniform;

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

pub use ip_locality::{IpLocalityConfig, IpLocalitySampler};
pub use locality::{LocalityConfig, LocalitySampler};
pub use per::{PerConfig, PerSampler};
pub use reuse::{ReuseConfig, ReuseWindowSampler};
pub use uniform::UniformSampler;

/// A mini-batch plan cached by the reuse-window wrapper, captured as part
/// of [`SamplerState`] so a resumed run replays the identical reuse
/// schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedPlan {
    /// The cached plan.
    pub plan: SamplePlan,
    /// Buffer length when the plan was drawn.
    pub len: usize,
    /// Remaining uses before a replan.
    pub uses_left: usize,
}

/// Serializable snapshot of a sampler's mutable state.
///
/// Checkpointing must capture prioritized samplers' sum-tree priorities
/// and annealing clocks (and the reuse wrapper's cached plan) — otherwise
/// a resumed run draws different mini-batches than the uninterrupted run
/// and bitwise reproducibility is lost. Stateless strategies (uniform,
/// locality) export [`SamplerState::Stateless`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SamplerState {
    /// The sampler carries no mutable state.
    Stateless,
    /// State of a [`per::PriorityCore`] (PER and ip-locality samplers).
    Priority {
        /// α-exponentiated sum-tree leaf priorities, in slot order
        /// (length = tree capacity).
        priorities: Vec<f64>,
        /// Largest raw (pre-α) priority observed so far.
        max_priority: f64,
        /// Number of slots that have ever received a priority.
        len: usize,
        /// Plans drawn so far (the β-annealing clock).
        plans: u64,
    },
    /// State of a reuse-window wrapper around an inner sampler.
    Reuse {
        /// The wrapped sampler's state.
        inner: Box<SamplerState>,
        /// The active cached plan, if any.
        cached: Option<CachedPlan>,
    },
}

/// A mini-batch sampling strategy over a replay buffer of growing length.
///
/// Implementations are stateful: prioritized strategies track per-slot
/// priorities via [`Sampler::observe_push`] and
/// [`Sampler::update_priorities`].
pub trait Sampler: std::fmt::Debug + Send {
    /// Short name used in reports (e.g. `"uniform"`, `"locality-n16-r64"`).
    fn name(&self) -> String;

    /// Plans the indices for one mini-batch of `batch` rows over a buffer
    /// currently holding `len` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer is empty, too small for the batch, or
    /// the batch is incompatible with the strategy configuration.
    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError>;

    /// [`Sampler::plan`] writing into a caller-owned plan whose segment and
    /// weight storage is reused across calls.
    ///
    /// The default implementation allocates a fresh plan and moves it into
    /// `out`; allocation-sensitive strategies (e.g.
    /// [`uniform::UniformSampler`]) override it to refill `out` in place.
    /// Both paths consume identical RNG draws, so plans are bitwise equal
    /// either way.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sampler::plan`]; `out` is unchanged on error.
    fn plan_into(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
        out: &mut SamplePlan,
    ) -> Result<(), ReplayError> {
        *out = self.plan(len, batch, rng)?;
        Ok(())
    }

    /// Notifies the strategy that a new transition landed in `slot`
    /// (prioritized strategies give fresh transitions maximal priority).
    fn observe_push(&mut self, _slot: usize) {}

    /// Feeds back TD errors for previously sampled `indices` so priorities
    /// can be refreshed. Non-prioritized strategies ignore this.
    fn update_priorities(&mut self, _indices: &[usize], _td_errors: &[f32]) {}

    /// Normalized priority of slot `idx` over a buffer of `len` rows, for
    /// strategies that maintain per-slot priorities; `None` otherwise.
    /// A telemetry-only read: it must not perturb sampling state.
    ///
    /// Prioritized strategies also answer `None` on *degenerate* buffers
    /// (`len == 0`, or a priority tree with zero total mass): there the
    /// normalization `priority / (2 · mean)` is `0/0`, so "undefined" is
    /// reported as such rather than as an accidental value. The returned
    /// `Some(p)` is always finite and in `[0, 1]`.
    fn normalized_priority_of(&self, _idx: usize, _len: usize) -> Option<f32> {
        None
    }

    /// Exports the sampler's mutable state for checkpointing. Stateless
    /// strategies return [`SamplerState::Stateless`].
    fn export_state(&self) -> SamplerState {
        SamplerState::Stateless
    }

    /// Restores state previously captured by [`Sampler::export_state`].
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::BadSamplerState`] if the state's variant or
    /// shape does not match this sampler — a checkpoint taken under a
    /// different sampler configuration must be rejected, not half-applied.
    fn import_state(&mut self, state: &SamplerState) -> Result<(), ReplayError> {
        match state {
            SamplerState::Stateless => Ok(()),
            other => Err(ReplayError::BadSamplerState {
                reason: format!(
                    "{} sampler is stateless but the checkpoint holds {}",
                    self.name(),
                    variant_name(other)
                ),
            }),
        }
    }
}

/// Short variant tag for error messages.
fn variant_name(state: &SamplerState) -> &'static str {
    match state {
        SamplerState::Stateless => "Stateless",
        SamplerState::Priority { .. } => "Priority",
        SamplerState::Reuse { .. } => "Reuse",
    }
}

/// Validates common preconditions shared by all strategies.
pub(crate) fn check_batch(len: usize, batch: usize) -> Result<(), ReplayError> {
    if len == 0 {
        return Err(ReplayError::EmptyBuffer);
    }
    if batch == 0 {
        return Err(ReplayError::InvalidBatch { reason: "batch size must be positive".into() });
    }
    if batch > len {
        return Err(ReplayError::NotEnoughSamples { available: len, requested: batch });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_batch_cases() {
        assert!(matches!(check_batch(0, 4), Err(ReplayError::EmptyBuffer)));
        assert!(matches!(check_batch(10, 0), Err(ReplayError::InvalidBatch { .. })));
        assert!(matches!(
            check_batch(3, 4),
            Err(ReplayError::NotEnoughSamples { available: 3, requested: 4 })
        ));
        assert!(check_batch(4, 4).is_ok());
    }
}
