//! Mini-batch sampling strategies.
//!
//! Each strategy produces a [`SamplePlan`] — the common indices array an
//! agent trainer applies to every agent's replay buffer — and optionally
//! consumes TD-error feedback to maintain priorities.

pub mod ip_locality;
pub mod locality;
pub mod per;
pub mod reuse;
pub mod uniform;

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use rand::rngs::StdRng;

pub use ip_locality::{IpLocalityConfig, IpLocalitySampler};
pub use locality::{LocalityConfig, LocalitySampler};
pub use per::{PerConfig, PerSampler};
pub use reuse::{ReuseConfig, ReuseWindowSampler};
pub use uniform::UniformSampler;

/// A mini-batch sampling strategy over a replay buffer of growing length.
///
/// Implementations are stateful: prioritized strategies track per-slot
/// priorities via [`Sampler::observe_push`] and
/// [`Sampler::update_priorities`].
pub trait Sampler: std::fmt::Debug + Send {
    /// Short name used in reports (e.g. `"uniform"`, `"locality-n16-r64"`).
    fn name(&self) -> String;

    /// Plans the indices for one mini-batch of `batch` rows over a buffer
    /// currently holding `len` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer is empty, too small for the batch, or
    /// the batch is incompatible with the strategy configuration.
    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError>;

    /// Notifies the strategy that a new transition landed in `slot`
    /// (prioritized strategies give fresh transitions maximal priority).
    fn observe_push(&mut self, _slot: usize) {}

    /// Feeds back TD errors for previously sampled `indices` so priorities
    /// can be refreshed. Non-prioritized strategies ignore this.
    fn update_priorities(&mut self, _indices: &[usize], _td_errors: &[f32]) {}
}

/// Validates common preconditions shared by all strategies.
pub(crate) fn check_batch(len: usize, batch: usize) -> Result<(), ReplayError> {
    if len == 0 {
        return Err(ReplayError::EmptyBuffer);
    }
    if batch == 0 {
        return Err(ReplayError::InvalidBatch { reason: "batch size must be positive".into() });
    }
    if batch > len {
        return Err(ReplayError::NotEnoughSamples { available: len, requested: batch });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_batch_cases() {
        assert!(matches!(check_batch(0, 4), Err(ReplayError::EmptyBuffer)));
        assert!(matches!(check_batch(10, 0), Err(ReplayError::InvalidBatch { .. })));
        assert!(matches!(
            check_batch(3, 4),
            Err(ReplayError::NotEnoughSamples { available: 3, requested: 4 })
        ));
        assert!(check_batch(4, 4).is_ok());
    }
}
