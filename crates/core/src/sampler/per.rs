//! Proportional prioritized experience replay (PER, Schaul et al. 2015) —
//! the prioritization baseline the paper compares against
//! (PER-MADDPG / PER-MATD3).

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use crate::sampler::{check_batch, Sampler, SamplerState};
use crate::sumtree::SumTree;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of proportional PER.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerConfig {
    /// Priority exponent α (0 = uniform, 1 = fully proportional).
    pub alpha: f64,
    /// Initial importance-sampling compensation exponent β (Lemma 1's β;
    /// 1 = full compensation).
    pub beta: f64,
    /// Final β reached after [`PerConfig::beta_anneal_plans`] plans
    /// (Schaul et al. anneal β → 1 so late training is unbiased).
    pub beta_final: f64,
    /// Number of plans over which β anneals linearly from `beta` to
    /// `beta_final` (0 disables annealing).
    pub beta_anneal_plans: u64,
    /// Small constant added to |TD| so no priority is zero.
    pub epsilon: f64,
    /// Buffer capacity the priority tree covers.
    pub capacity: usize,
}

impl PerConfig {
    /// The defaults used by the paper's PER baseline (β annealed to 1 over
    /// 100 k plans).
    pub fn with_capacity(capacity: usize) -> Self {
        PerConfig {
            alpha: 0.6,
            beta: 0.4,
            beta_final: 1.0,
            beta_anneal_plans: 100_000,
            epsilon: 1e-3,
            capacity,
        }
    }
}

/// Shared prioritization machinery: a sum tree plus the importance-weight
/// bookkeeping. Reused by [`PerSampler`] and the information-prioritized
/// locality sampler.
#[derive(Debug, Clone)]
pub struct PriorityCore {
    tree: SumTree,
    config: PerConfig,
    max_priority: f64,
    len: usize,
    plans: u64,
}

impl PriorityCore {
    /// Creates the core with all priorities zero.
    pub fn new(config: PerConfig) -> Self {
        PriorityCore {
            tree: SumTree::new(config.capacity),
            config,
            max_priority: 1.0,
            len: 0,
            plans: 0,
        }
    }

    /// Advances the β-annealing schedule (call once per planned batch) and
    /// returns the effective β.
    pub fn advance_beta(&mut self) -> f64 {
        self.plans += 1;
        self.current_beta()
    }

    /// The effective β under the annealing schedule.
    pub fn current_beta(&self) -> f64 {
        let c = &self.config;
        if c.beta_anneal_plans == 0 {
            return c.beta;
        }
        let t = (self.plans as f64 / c.beta_anneal_plans as f64).min(1.0);
        c.beta + (c.beta_final - c.beta) * t
    }

    /// The configuration in force.
    pub fn config(&self) -> &PerConfig {
        &self.config
    }

    /// Number of slots that have ever received a priority.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot has a priority yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gives a freshly pushed `slot` the current maximum priority, so new
    /// transitions are sampled at least once (standard PER behaviour).
    pub fn observe_push(&mut self, slot: usize) {
        self.tree.update(slot, self.max_priority.powf(self.config.alpha));
        self.len = (self.len + 1).min(self.config.capacity);
    }

    /// Refreshes priorities from TD errors: `p = (|td| + ε)^α`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn update_priorities(&mut self, indices: &[usize], td_errors: &[f32]) {
        assert_eq!(indices.len(), td_errors.len(), "indices/td length mismatch");
        for (&i, &td) in indices.iter().zip(td_errors) {
            let p = (td.abs() as f64 + self.config.epsilon).max(1e-12);
            self.max_priority = self.max_priority.max(p);
            self.tree.update(i, p.powf(self.config.alpha));
        }
    }

    /// Draws one leaf proportional to priority within the prefix stratum
    /// `[lo, hi)`; returns `(index, sampling probability)`.
    pub fn sample_stratum(&self, lo: f64, hi: f64, rng: &mut StdRng) -> (usize, f64) {
        let total = self.tree.total();
        let prefix = rng.gen_range(lo..hi.max(lo + f64::MIN_POSITIVE));
        let idx = self.tree.find_prefix(prefix);
        let prob = self.tree.priority(idx) / total;
        (idx, prob)
    }

    /// Total priority mass.
    pub fn total_mass(&self) -> f64 {
        self.tree.total()
    }

    /// Current (α-exponentiated) priority of a slot.
    pub fn priority_of(&self, idx: usize) -> f64 {
        self.tree.priority(idx)
    }

    /// Whether the `(idx, len)` normalization of
    /// [`PriorityCore::normalized_priority`] is undefined: an empty buffer
    /// or a sum tree with zero total mass has no mean priority to
    /// normalize against. Callers that report priorities
    /// ([`crate::sampler::Sampler::normalized_priority_of`]) must map this
    /// case to `None` rather than inventing a number.
    pub fn is_degenerate(&self, len: usize) -> bool {
        len == 0 || self.tree.total() <= 0.0
    }

    /// Priority of a slot normalized to `[0, 1]` — the "value" the paper's
    /// neighbor predictor thresholds. Normalization is relative to twice
    /// the buffer's **mean** priority (O(1) from the tree total), so a
    /// mean-priority transition scores 0.5 and anything ≥ 2× the mean
    /// saturates at 1.0; an all-time-max normalization would pin almost
    /// every reference below the lowest threshold once an outlier TD error
    /// appears.
    ///
    /// Degenerate buffers ([`PriorityCore::is_degenerate`]) return `0.0`
    /// by definition — "no priority information" maps to the smallest
    /// neighbor class, never to NaN (the naive `priority / (2·mean)` would
    /// be `0/0` here).
    pub fn normalized_priority(&self, idx: usize, len: usize) -> f32 {
        let total = self.tree.total();
        if total <= 0.0 || len == 0 {
            return 0.0;
        }
        let mean = total / len as f64;
        ((self.tree.priority(idx) / (2.0 * mean)).clamp(0.0, 1.0)) as f32
    }

    /// The maximum importance weight over the first `len` rows — compute
    /// this **once per plan** (it scans the tree's leaves) and feed it to
    /// [`PriorityCore::importance_weight`].
    pub fn max_weight(&self, len: usize) -> f64 {
        let beta = self.current_beta();
        let n = len.max(1) as f64;
        let min_prob =
            self.tree.min_priority(len).map(|p| p / self.tree.total()).unwrap_or(1.0 / n);
        (1.0 / (n * min_prob.max(1e-12))).powf(beta)
    }

    /// Captures the core's full mutable state for checkpointing.
    pub fn export_state(&self) -> SamplerState {
        SamplerState::Priority {
            priorities: self.tree.leaves(),
            max_priority: self.max_priority,
            len: self.len,
            plans: self.plans,
        }
    }

    /// Restores state captured by [`PriorityCore::export_state`],
    /// validating every value so a corrupted checkpoint cannot poison the
    /// sum tree (which asserts on non-finite priorities).
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::BadSamplerState`] on variant/capacity
    /// mismatch or non-finite/negative values.
    pub fn import_state(&mut self, state: &SamplerState) -> Result<(), ReplayError> {
        let SamplerState::Priority { priorities, max_priority, len, plans } = state else {
            return Err(ReplayError::BadSamplerState {
                reason: "prioritized sampler requires Priority checkpoint state".into(),
            });
        };
        if priorities.len() != self.config.capacity {
            return Err(ReplayError::BadSamplerState {
                reason: format!(
                    "priority vector holds {} slots but the tree capacity is {}",
                    priorities.len(),
                    self.config.capacity
                ),
            });
        }
        if priorities.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ReplayError::BadSamplerState {
                reason: "priority vector contains negative or non-finite values".into(),
            });
        }
        if !max_priority.is_finite() || *max_priority <= 0.0 {
            return Err(ReplayError::BadSamplerState {
                reason: format!("max_priority {max_priority} must be finite and positive"),
            });
        }
        if *len > self.config.capacity {
            return Err(ReplayError::BadSamplerState {
                reason: format!(
                    "stated length {len} exceeds tree capacity {}",
                    self.config.capacity
                ),
            });
        }
        self.tree.set_leaves(priorities);
        self.max_priority = *max_priority;
        self.len = *len;
        self.plans = *plans;
        Ok(())
    }

    /// Lemma 1 importance weight for a sample of probability `prob` over
    /// `len` stored rows: `w_i = (1/N · 1/P(i))^β`, normalized by
    /// `w_max` (from [`PriorityCore::max_weight`]) so weights lie in
    /// `(0, 1]`.
    pub fn importance_weight(&self, prob: f64, len: usize, w_max: f64) -> f32 {
        let beta = self.current_beta();
        let n = len.max(1) as f64;
        let w = (1.0 / (n * prob.max(1e-12))).powf(beta);
        (w / w_max.max(1e-12)).min(1.0) as f32
    }
}

/// Proportional PER with stratified sampling.
///
/// # Examples
///
/// ```
/// use marl_core::sampler::{PerConfig, PerSampler, Sampler};
/// use rand::SeedableRng;
///
/// let mut s = PerSampler::new(PerConfig::with_capacity(1 << 14));
/// for slot in 0..1000 { s.observe_push(slot); }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let plan = s.plan(1000, 256, &mut rng)?;
/// assert_eq!(plan.batch_len(), 256);
/// assert!(plan.weights.is_some());
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PerSampler {
    core: PriorityCore,
}

impl PerSampler {
    /// Creates the sampler.
    pub fn new(config: PerConfig) -> Self {
        PerSampler { core: PriorityCore::new(config) }
    }

    /// Access to the shared prioritization core (for tests/diagnostics).
    pub fn core(&self) -> &PriorityCore {
        &self.core
    }
}

impl Sampler for PerSampler {
    fn name(&self) -> String {
        "per".to_owned()
    }

    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError> {
        check_batch(len, batch)?;
        if self.core.total_mass() <= 0.0 {
            return Err(ReplayError::InvalidBatch {
                reason: "priority tree is empty; push transitions first".into(),
            });
        }
        // Stratified proportional sampling: divide the mass into `batch`
        // equal strata and draw one index from each.
        self.core.advance_beta();
        let total = self.core.total_mass();
        let stratum = total / batch as f64;
        let w_max = self.core.max_weight(len);
        let mut indices = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        for b in 0..batch {
            let (idx, prob) =
                self.core.sample_stratum(b as f64 * stratum, (b + 1) as f64 * stratum, rng);
            let idx = idx.min(len - 1);
            indices.push(idx);
            weights.push(self.core.importance_weight(prob, len, w_max));
        }
        let mut plan = SamplePlan::from_indices(&indices);
        plan.weights = Some(weights);
        Ok(plan)
    }

    fn observe_push(&mut self, slot: usize) {
        self.core.observe_push(slot);
    }

    fn update_priorities(&mut self, indices: &[usize], td_errors: &[f32]) {
        self.core.update_priorities(indices, td_errors);
    }

    fn normalized_priority_of(&self, idx: usize, len: usize) -> Option<f32> {
        if self.core.is_degenerate(len) {
            return None;
        }
        Some(self.core.normalized_priority(idx, len))
    }

    fn export_state(&self) -> SamplerState {
        self.core.export_state()
    }

    fn import_state(&mut self, state: &SamplerState) -> Result<(), ReplayError> {
        self.core.import_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pushed_sampler(n: usize) -> PerSampler {
        let mut s = PerSampler::new(PerConfig::with_capacity(1 << 12));
        for i in 0..n {
            s.observe_push(i);
        }
        s
    }

    #[test]
    fn fresh_transitions_all_sampleable() {
        let mut s = pushed_sampler(100);
        let mut rng = StdRng::seed_from_u64(0);
        let p = s.plan(100, 64, &mut rng).unwrap();
        assert!(p.flatten().iter().all(|&i| i < 100));
        let w = p.weights.unwrap();
        assert_eq!(w.len(), 64);
        // uniform priorities → all weights 1
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-5), "{w:?}");
    }

    #[test]
    fn high_priority_rows_sampled_more() {
        let mut s = pushed_sampler(64);
        // Make row 7 dominate.
        s.update_priorities(&[7], &[100.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..50 {
            let p = s.plan(64, 32, &mut rng).unwrap();
            hits += p.flatten().iter().filter(|&&i| i == 7).count();
        }
        // With alpha = 0.6, row 7's mass share is (100^0.6)/(63 + 100^0.6)
        // ~ 20%, so ~320 of the 1600 samples; uniform would give ~25.
        assert!(hits > 200, "hits={hits}");
    }

    #[test]
    fn weights_compensate_for_priority() {
        let mut s = pushed_sampler(64);
        s.update_priorities(&[7], &[100.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let p = s.plan(64, 64, &mut rng).unwrap();
        let idx = p.flatten();
        let w = p.weights.unwrap();
        // Weight of the dominant index must be far below any rare one.
        let w7: Vec<f32> = idx.iter().zip(&w).filter(|(&i, _)| i == 7).map(|(_, &w)| w).collect();
        let w_other: Vec<f32> =
            idx.iter().zip(&w).filter(|(&i, _)| i != 7).map(|(_, &w)| w).collect();
        assert!(!w7.is_empty());
        if !w_other.is_empty() {
            assert!(w7[0] < w_other[0]);
        }
        assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn beta_anneals_toward_final() {
        let mut cfg = PerConfig::with_capacity(64);
        cfg.beta = 0.4;
        cfg.beta_final = 1.0;
        cfg.beta_anneal_plans = 10;
        let mut s = PerSampler::new(cfg);
        for i in 0..64 {
            s.observe_push(i);
        }
        assert!((s.core().current_beta() - 0.4).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            s.plan(64, 8, &mut rng).unwrap();
        }
        assert!((s.core().current_beta() - 1.0).abs() < 1e-9);
        // and it saturates
        s.plan(64, 8, &mut rng).unwrap();
        assert!((s.core().current_beta() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn annealing_disabled_with_zero_plans() {
        let mut cfg = PerConfig::with_capacity(8);
        cfg.beta_anneal_plans = 0;
        let mut core = PriorityCore::new(cfg);
        for _ in 0..100 {
            core.advance_beta();
        }
        assert!((core.current_beta() - cfg.beta).abs() < 1e-12);
    }

    #[test]
    fn empty_tree_rejected() {
        let mut s = PerSampler::new(PerConfig::with_capacity(16));
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.plan(10, 4, &mut rng).is_err());
    }

    #[test]
    fn state_roundtrip_preserves_sampling() {
        let mut a = pushed_sampler(200);
        a.update_priorities(&[3, 17, 99], &[42.0, 7.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(5);
        a.plan(200, 32, &mut rng).unwrap(); // advance the β clock
        let state = a.export_state();

        let mut b = PerSampler::new(PerConfig::with_capacity(1 << 12));
        b.import_state(&state).unwrap();
        assert_eq!(b.export_state(), state);
        // Identical RNG + identical state ⇒ identical plans.
        let mut ra = StdRng::seed_from_u64(77);
        let mut rb = StdRng::seed_from_u64(77);
        assert_eq!(a.plan(200, 64, &mut ra).unwrap(), b.plan(200, 64, &mut rb).unwrap());
    }

    #[test]
    fn import_rejects_bad_state() {
        let mut s = PerSampler::new(PerConfig::with_capacity(16));
        // wrong variant
        assert!(matches!(
            s.import_state(&SamplerState::Stateless),
            Err(ReplayError::BadSamplerState { .. })
        ));
        // wrong capacity
        let wrong = SamplerState::Priority {
            priorities: vec![1.0; 8],
            max_priority: 1.0,
            len: 8,
            plans: 0,
        };
        assert!(s.import_state(&wrong).is_err());
        // poisoned values must be rejected, not asserted on
        let nan = SamplerState::Priority {
            priorities: vec![f64::NAN; 16],
            max_priority: 1.0,
            len: 4,
            plans: 0,
        };
        assert!(s.import_state(&nan).is_err());
        let bad_max = SamplerState::Priority {
            priorities: vec![1.0; 16],
            max_priority: f64::INFINITY,
            len: 4,
            plans: 0,
        };
        assert!(s.import_state(&bad_max).is_err());
        let bad_len = SamplerState::Priority {
            priorities: vec![1.0; 16],
            max_priority: 1.0,
            len: 17,
            plans: 0,
        };
        assert!(s.import_state(&bad_len).is_err());
    }

    #[test]
    fn degenerate_buffer_reports_no_normalized_priority() {
        // Empty buffer: the normalization (priority / 2·mean) is 0/0, so
        // the reporting hook must answer None, not a NaN-free accident.
        let s = PerSampler::new(PerConfig::with_capacity(16));
        assert!(s.core().is_degenerate(0));
        assert!(s.core().is_degenerate(4), "zero total mass is degenerate at any len");
        assert_eq!(s.normalized_priority_of(0, 0), None);
        assert_eq!(s.normalized_priority_of(3, 4), None);
        // The core's own defined degenerate value is 0.0 (never NaN).
        assert_eq!(s.core().normalized_priority(3, 4), 0.0);
        // One push gives the tree mass and the hook a defined answer.
        let s = pushed_sampler(1);
        assert!(!s.core().is_degenerate(1));
        let p = s.normalized_priority_of(0, 1).unwrap();
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        // `len == 0` stays undefined even with mass in the tree.
        assert_eq!(s.normalized_priority_of(0, 0), None);
    }

    #[test]
    fn fresh_pushes_inherit_max_priority() {
        let mut s = PerSampler::new(PerConfig::with_capacity(8));
        s.observe_push(0);
        let base = s.core().priority_of(0);
        s.update_priorities(&[0], &[50.0]);
        let inflated = s.core().priority_of(0);
        assert!(inflated > base);
        // A new transition lands with the maximum priority seen so far, so
        // it is guaranteed to be sampled at least once.
        s.observe_push(1);
        assert!((s.core().priority_of(1) - inflated).abs() / inflated < 1e-3);
    }
}
