//! Transition-reuse sampling (the AccMER direction the paper cites):
//! reuse the same mini-batch plan for a window of consecutive plans, so
//! the gathered rows stay cache-hot across agent trainers and update
//! iterations instead of being re-fetched from random locations.
//!
//! Wraps any inner strategy; the paper's citation targets *prioritized*
//! workloads, where replanning is also expensive (B sum-tree traversals).

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use crate::sampler::{CachedPlan, Sampler, SamplerState};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Configuration of the reuse window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseConfig {
    /// How many consecutive plans share one drawn batch (1 = no reuse).
    pub window: usize,
}

impl ReuseConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "reuse window must be positive");
        ReuseConfig { window }
    }
}

/// A sampler adapter that replans only every `window` calls.
///
/// # Examples
///
/// ```
/// use marl_core::sampler::{ReuseConfig, ReuseWindowSampler, Sampler, UniformSampler};
/// use rand::SeedableRng;
///
/// let mut s = ReuseWindowSampler::new(Box::new(UniformSampler::new()), ReuseConfig::new(3));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let a = s.plan(1000, 64, &mut rng)?;
/// let b = s.plan(1000, 64, &mut rng)?;
/// assert_eq!(a, b); // second call reuses the first plan
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug)]
pub struct ReuseWindowSampler {
    inner: Box<dyn Sampler>,
    config: ReuseConfig,
    cached: Option<(SamplePlan, usize, usize)>, // (plan, len-at-plan, uses left)
}

impl ReuseWindowSampler {
    /// Wraps `inner` with a reuse window.
    pub fn new(inner: Box<dyn Sampler>, config: ReuseConfig) -> Self {
        ReuseWindowSampler { inner, config, cached: None }
    }

    /// The reuse configuration.
    pub fn config(&self) -> &ReuseConfig {
        &self.config
    }

    /// Drops the cached plan (e.g. after the buffer shrank).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }
}

impl Sampler for ReuseWindowSampler {
    fn name(&self) -> String {
        format!("{}-reuse{}", self.inner.name(), self.config.window)
    }

    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError> {
        if let Some((plan, plan_len, uses)) = &mut self.cached {
            // Reuse only while the batch shape matches and the buffer has
            // not shrunk below what the plan references.
            if *uses > 0 && plan.batch_len() == batch && *plan_len <= len {
                *uses -= 1;
                return Ok(plan.clone());
            }
        }
        let plan = self.inner.plan(len, batch, rng)?;
        self.cached = Some((plan.clone(), len, self.config.window - 1));
        Ok(plan)
    }

    fn observe_push(&mut self, slot: usize) {
        self.inner.observe_push(slot);
    }

    fn update_priorities(&mut self, indices: &[usize], td_errors: &[f32]) {
        self.inner.update_priorities(indices, td_errors);
    }

    fn normalized_priority_of(&self, idx: usize, len: usize) -> Option<f32> {
        self.inner.normalized_priority_of(idx, len)
    }

    fn export_state(&self) -> SamplerState {
        SamplerState::Reuse {
            inner: Box::new(self.inner.export_state()),
            cached: self.cached.as_ref().map(|(plan, len, uses)| CachedPlan {
                plan: plan.clone(),
                len: *len,
                uses_left: *uses,
            }),
        }
    }

    fn import_state(&mut self, state: &SamplerState) -> Result<(), ReplayError> {
        let SamplerState::Reuse { inner, cached } = state else {
            return Err(ReplayError::BadSamplerState {
                reason: "reuse-window sampler requires Reuse checkpoint state".into(),
            });
        };
        self.inner.import_state(inner)?;
        self.cached = cached.as_ref().map(|c| (c.plan.clone(), c.len, c.uses_left));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{PerConfig, PerSampler, UniformSampler};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn window_replans_after_expiry() {
        let mut s = ReuseWindowSampler::new(Box::new(UniformSampler::new()), ReuseConfig::new(2));
        let mut r = rng();
        let a = s.plan(1000, 32, &mut r).unwrap();
        let b = s.plan(1000, 32, &mut r).unwrap();
        let c = s.plan(1000, 32, &mut r).unwrap();
        assert_eq!(a, b, "second call within the window reuses");
        assert_ne!(b, c, "third call replans");
    }

    #[test]
    fn batch_change_invalidates_cache() {
        let mut s = ReuseWindowSampler::new(Box::new(UniformSampler::new()), ReuseConfig::new(4));
        let mut r = rng();
        let a = s.plan(1000, 32, &mut r).unwrap();
        let b = s.plan(1000, 64, &mut r).unwrap();
        assert_ne!(a.batch_len(), b.batch_len());
        assert_eq!(b.batch_len(), 64);
    }

    #[test]
    fn explicit_invalidation_forces_replan() {
        let mut s = ReuseWindowSampler::new(Box::new(UniformSampler::new()), ReuseConfig::new(10));
        let mut r = rng();
        let a = s.plan(1000, 32, &mut r).unwrap();
        s.invalidate();
        let b = s.plan(1000, 32, &mut r).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn priorities_flow_through_to_inner() {
        let mut per = PerSampler::new(PerConfig::with_capacity(128));
        for i in 0..128 {
            per.observe_push(i);
        }
        let mut s = ReuseWindowSampler::new(Box::new(per), ReuseConfig::new(2));
        s.update_priorities(&[5], &[1000.0]);
        let mut r = rng();
        let plan = s.plan(128, 64, &mut r).unwrap();
        let hits = plan.flatten().iter().filter(|&&i| i == 5).count();
        assert!(hits >= 1, "inner PER must see the priority update");
        assert!(plan.weights.is_some());
    }

    #[test]
    fn state_roundtrip_preserves_reuse_schedule() {
        let mut per = PerSampler::new(PerConfig::with_capacity(128));
        for i in 0..128 {
            per.observe_push(i);
        }
        let mut a = ReuseWindowSampler::new(Box::new(per), ReuseConfig::new(3));
        let mut r = rng();
        let plan = a.plan(128, 16, &mut r).unwrap(); // window active, 2 uses left
        let state = a.export_state();

        let mut per_b = PerSampler::new(PerConfig::with_capacity(128));
        let mut b = ReuseWindowSampler::new(Box::new(per_b.clone()), ReuseConfig::new(3));
        b.import_state(&state).unwrap();
        assert_eq!(b.export_state(), state);
        // The restored sampler continues the same window: next plan is the
        // cached one, regardless of RNG.
        let mut other_rng = StdRng::seed_from_u64(999);
        assert_eq!(b.plan(128, 16, &mut other_rng).unwrap(), plan);
        // Wrong variant is rejected and leaves the inner sampler coherent.
        assert!(per_b.import_state(&state).is_err());
    }

    #[test]
    fn name_reflects_composition() {
        let s = ReuseWindowSampler::new(Box::new(UniformSampler::new()), ReuseConfig::new(3));
        assert_eq!(s.name(), "uniform-reuse3");
    }

    #[test]
    #[should_panic(expected = "reuse window must be positive")]
    fn zero_window_rejected() {
        let _ = ReuseConfig::new(0);
    }
}
