//! Information-prioritized locality-aware sampling (Section IV-B1 of the
//! paper).
//!
//! Reference points are drawn proportionally to priority (PER); a
//! *neighbor predictor* maps each reference's **normalized priority** to a
//! neighbor count — below `T1 = 0.33` one neighbor, between `T1` and
//! `T2 = 0.66` two, above `T2` four — so the neighbors of *important*
//! transitions are captured (per the paper's abstract), and consecutive
//! transitions are gathered from each reference until the batch is
//! filled. Lemma 1 importance weights de-bias the TD update.

use crate::error::ReplayError;
use crate::indices::{SamplePlan, Segment};
use crate::sampler::per::{PerConfig, PriorityCore};
use crate::sampler::{check_batch, Sampler, SamplerState};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Configuration of the information-prioritized locality-aware sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpLocalityConfig {
    /// Underlying prioritization parameters.
    pub per: PerConfig,
    /// Normalized-priority thresholds `[T1, T2]` (paper: 0.33 / 0.66).
    pub thresholds: [f32; 2],
    /// Neighbor counts `[N1, N2, N3]` chosen below `T1`, between `T1` and
    /// `T2`, and above `T2` (paper: 1 / 2 / 4).
    pub neighbor_counts: [usize; 3],
}

impl IpLocalityConfig {
    /// The paper's parameters over a buffer of `capacity` rows.
    pub fn with_capacity(capacity: usize) -> Self {
        IpLocalityConfig {
            per: PerConfig::with_capacity(capacity),
            thresholds: [0.33, 0.66],
            neighbor_counts: [1, 2, 4],
        }
    }

    /// The neighbor predictor: neighbor count for a normalized priority
    /// ("more neighbors for more important references").
    ///
    /// The input contract matches
    /// [`PriorityCore::normalized_priority`][per]: a degenerate buffer
    /// (empty, or all-zero priority mass) normalizes to `0.0` and thus
    /// lands in the smallest class. Non-finite input — which no in-repo
    /// caller produces, but a NaN here would previously have fallen
    /// through every `<` comparison into the *largest* class — is defined
    /// to mean "no priority information" and also maps to the smallest
    /// class, keeping the predictor and the normalizer in agreement on
    /// degenerate buffers.
    ///
    /// [per]: crate::sampler::per::PriorityCore::normalized_priority
    pub fn predict_neighbors(&self, normalized_priority: f32) -> usize {
        if !normalized_priority.is_finite() || normalized_priority < self.thresholds[0] {
            self.neighbor_counts[0]
        } else if normalized_priority < self.thresholds[1] {
            self.neighbor_counts[1]
        } else {
            self.neighbor_counts[2]
        }
    }
}

/// Information-prioritized cache locality-aware sampler.
///
/// # Examples
///
/// ```
/// use marl_core::sampler::{IpLocalityConfig, IpLocalitySampler, Sampler};
/// use rand::SeedableRng;
///
/// let mut s = IpLocalitySampler::new(IpLocalityConfig::with_capacity(1 << 14));
/// for slot in 0..2000 { s.observe_push(slot); }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let plan = s.plan(2000, 1024, &mut rng)?;
/// assert_eq!(plan.batch_len(), 1024);
/// assert!(plan.random_jumps() < 1024); // fewer jumps than PER's 1024
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IpLocalitySampler {
    core: PriorityCore,
    config: IpLocalityConfig,
}

impl IpLocalitySampler {
    /// Creates the sampler.
    pub fn new(config: IpLocalityConfig) -> Self {
        IpLocalitySampler { core: PriorityCore::new(config.per), config }
    }

    /// The active configuration.
    pub fn config(&self) -> &IpLocalityConfig {
        &self.config
    }

    /// Access to the prioritization core (tests/diagnostics).
    pub fn core(&self) -> &PriorityCore {
        &self.core
    }
}

impl Sampler for IpLocalitySampler {
    fn name(&self) -> String {
        "ip-locality".to_owned()
    }

    fn plan(
        &mut self,
        len: usize,
        batch: usize,
        rng: &mut StdRng,
    ) -> Result<SamplePlan, ReplayError> {
        check_batch(len, batch)?;
        if self.core.total_mass() <= 0.0 {
            return Err(ReplayError::InvalidBatch {
                reason: "priority tree is empty; push transitions first".into(),
            });
        }
        self.core.advance_beta();
        let w_max = self.core.max_weight(len);
        let mut segments = Vec::new();
        let mut weights = Vec::with_capacity(batch);
        let mut filled = 0;
        let total = self.core.total_mass();
        // "This process continues until the batch size is reached."
        while filled < batch {
            let (idx, prob) = self.core.sample_stratum(0.0, total, rng);
            let idx = idx.min(len.saturating_sub(1));
            let w = self.core.importance_weight(prob, len, w_max);
            let priority = self.core.normalized_priority(idx, len);
            let want = self.config.predict_neighbors(priority).min(batch - filled);
            // Clamp the run so `D[idx : idx + n]` stays within the stored
            // prefix.
            let start = idx.min(len - want.min(len));
            let run = want.min(len - start);
            segments.push(Segment::run(start, run));
            // Neighbors inherit the reference's importance weight: they are
            // gathered *because of* the reference, so its sampling
            // probability is the correction the TD update needs.
            weights.extend(std::iter::repeat_n(w, run));
            filled += run;
        }
        Ok(SamplePlan { segments, weights: Some(weights) })
    }

    fn observe_push(&mut self, slot: usize) {
        self.core.observe_push(slot);
    }

    fn update_priorities(&mut self, indices: &[usize], td_errors: &[f32]) {
        self.core.update_priorities(indices, td_errors);
    }

    fn normalized_priority_of(&self, idx: usize, len: usize) -> Option<f32> {
        if self.core.is_degenerate(len) {
            return None;
        }
        Some(self.core.normalized_priority(idx, len))
    }

    fn export_state(&self) -> SamplerState {
        self.core.export_state()
    }

    fn import_state(&mut self, state: &SamplerState) -> Result<(), ReplayError> {
        self.core.import_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sampler(n: usize) -> IpLocalitySampler {
        let mut s = IpLocalitySampler::new(IpLocalityConfig::with_capacity(1 << 12));
        for i in 0..n {
            s.observe_push(i);
        }
        s
    }

    #[test]
    fn predictor_thresholds_match_paper() {
        let c = IpLocalityConfig::with_capacity(16);
        assert_eq!(c.predict_neighbors(0.1), 1);
        assert_eq!(c.predict_neighbors(0.33), 2);
        assert_eq!(c.predict_neighbors(0.5), 2);
        assert_eq!(c.predict_neighbors(0.66), 4);
        assert_eq!(c.predict_neighbors(1.0), 4);
    }

    #[test]
    fn plan_fills_batch_exactly() {
        let mut s = sampler(2000);
        let mut rng = StdRng::seed_from_u64(0);
        for batch in [64usize, 100, 1024] {
            let p = s.plan(2000, batch, &mut rng).unwrap();
            assert_eq!(p.batch_len(), batch);
            assert_eq!(p.weights.as_ref().unwrap().len(), batch);
        }
    }

    #[test]
    fn fewer_jumps_than_per() {
        // With uniform priorities every reference sits at the mean
        // (normalized 0.5) → 2 neighbors per ref → jumps ≈ batch/2.
        let mut s = sampler(4000);
        let mut rng = StdRng::seed_from_u64(1);
        let p = s.plan(4000, 1024, &mut rng).unwrap();
        assert!(p.random_jumps() <= 1024 / 2 + 1, "jumps={}", p.random_jumps());
        assert!(p.random_jumps() < 1024, "must jump less than PER");
    }

    #[test]
    fn important_references_get_long_runs() {
        let mut s = sampler(512);
        s.update_priorities(&[100], &[1000.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let p = s.plan(512, 256, &mut rng).unwrap();
        // index 100's alpha-dampened mass share is ~11%, far above the
        // uniform 1/512; it is drawn repeatedly as a reference point and —
        // being the *most important* reference — captures the maximum
        // neighbor run (paper: "capture the neighbors of important
        // transitions").
        let hits = p.flatten().iter().filter(|&&i| (100..104).contains(&i)).count();
        assert!(hits >= 4, "hits={hits}");
        // All-but-the-last such segments take the full 4-neighbor run (the
        // final segment of a plan may be truncated to fit the batch).
        let runs: Vec<usize> =
            p.segments.iter().filter(|seg| seg.start == 100).map(|seg| seg.len).collect();
        assert!(!runs.is_empty());
        assert_eq!(
            runs.iter().copied().max().unwrap(),
            4,
            "max-priority reference takes 4 neighbors: {runs:?}"
        );
        // Its importance weight is small (it is over-sampled), de-biasing
        // the update.
        let w = p.weights.unwrap();
        assert!(w.iter().copied().fold(f32::INFINITY, f32::min) < 0.33);
    }

    #[test]
    fn runs_stay_in_bounds() {
        let mut s = sampler(64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = s.plan(64, 32, &mut rng).unwrap();
            for seg in &p.segments {
                assert!(seg.start + seg.len <= 64, "{seg:?}");
            }
        }
    }

    #[test]
    fn empty_tree_rejected() {
        let mut s = IpLocalitySampler::new(IpLocalityConfig::with_capacity(8));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(s.plan(8, 4, &mut rng).is_err());
    }

    #[test]
    fn predictor_and_normalizer_agree_on_degenerate_buffers() {
        let c = IpLocalityConfig::with_capacity(16);
        // Non-finite "priority" means no information — the smallest class,
        // not a fall-through into the largest one.
        assert_eq!(c.predict_neighbors(f32::NAN), 1);
        assert_eq!(c.predict_neighbors(f32::INFINITY), 1);
        assert_eq!(c.predict_neighbors(f32::NEG_INFINITY), 1);
        // A degenerate buffer normalizes to 0.0, which lands in the same
        // smallest class: both halves of the pipeline tell one story.
        let s = IpLocalitySampler::new(c.clone());
        assert!(s.core().is_degenerate(8));
        assert_eq!(s.normalized_priority_of(3, 8), None);
        assert_eq!(c.predict_neighbors(s.core().normalized_priority(3, 8)), 1);
        // With mass in the tree the hook reports a thresholdable value.
        let mut s = s;
        for i in 0..8 {
            s.observe_push(i);
        }
        let p = s.normalized_priority_of(3, 8).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}
