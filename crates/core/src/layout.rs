//! Transition data layout reorganization (Section IV-B2 of the paper).
//!
//! Instead of N per-agent buffers in distant memory, the interleaved store
//! keeps a single key-value table: the key is the time-step index, the
//! value is *all agents' transition data for that step, contiguous*. A
//! mini-batch gather then touches one fat row per index — `O(m)` lookups —
//! instead of `N` separate buffers — `O(N·m)` — and a single fetch
//! prefetches every agent's data at once.

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use crate::multi::MultiAgentReplay;
use crate::transition::{AgentBatch, MultiBatch, Transition, TransitionLayout, TransitionRef};

/// Statistics of one reorganization pass (the "data reshaping" cost the
/// paper charges against the layout optimization at small agent counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorganizeReport {
    /// Rows copied.
    pub rows: usize,
    /// Agents interleaved.
    pub agents: usize,
    /// Total `f32` elements moved.
    pub elements_moved: usize,
}

/// A single interleaved key-value store over all agents' transitions.
///
/// # Examples
///
/// ```
/// use marl_core::layout::InterleavedStore;
/// use marl_core::transition::{Transition, TransitionLayout};
///
/// let layouts = vec![TransitionLayout::new(2, 1); 4];
/// let mut store = InterleavedStore::new(&layouts, 64);
/// let ts: Vec<Transition> = (0..4)
///     .map(|_| Transition {
///         obs: vec![0.0; 2],
///         action: vec![1.0],
///         reward: 0.0,
///         next_obs: vec![0.0; 2],
///         done: 0.0,
///     })
///     .collect();
/// store.push_step(&ts)?;
/// assert_eq!(store.len(), 1);
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedStore {
    layouts: Vec<TransitionLayout>,
    /// Element offset of each agent's segment within a fat row.
    offsets: Vec<usize>,
    fat_width: usize,
    capacity: usize,
    data: Vec<f32>,
    len: usize,
    next: usize,
}

impl InterleavedStore {
    /// Creates an empty interleaved store for the given per-agent layouts.
    ///
    /// # Panics
    ///
    /// Panics if `layouts` is empty or `capacity == 0`.
    pub fn new(layouts: &[TransitionLayout], capacity: usize) -> Self {
        assert!(!layouts.is_empty(), "need at least one agent");
        assert!(capacity > 0, "capacity must be positive");
        let mut offsets = Vec::with_capacity(layouts.len());
        let mut off = 0;
        for l in layouts {
            offsets.push(off);
            off += l.row_width();
        }
        InterleavedStore {
            layouts: layouts.to_vec(),
            offsets,
            fat_width: off,
            capacity,
            data: vec![0.0; capacity * off],
            len: 0,
            next: 0,
        }
    }

    /// Builds the store by reorganizing an existing per-agent replay — the
    /// paper's reshape step. Returns the store and a cost report.
    pub fn reorganize_from(replay: &MultiAgentReplay) -> (Self, ReorganizeReport) {
        let layouts = replay.layouts();
        let mut store = InterleavedStore::new(&layouts, replay.capacity());
        let rows = replay.len();
        // Stream each agent's rows into the interleaved fat rows. This is
        // a full-buffer copy: the dominant cost at small N.
        for (a, l) in layouts.iter().enumerate() {
            let w = l.row_width();
            let off = store.offsets[a];
            let src = replay.buffer(a).raw_rows();
            for t in 0..rows {
                let dst = t * store.fat_width + off;
                store.data[dst..dst + w].copy_from_slice(&src[t * w..(t + 1) * w]);
            }
        }
        store.len = rows;
        // Adopt the source ring's cursor, not `rows % capacity`: once the
        // source has wrapped, `len == capacity` while the write cursor sits
        // anywhere, and subsequent pushes must overwrite the *oldest* slot.
        store.next = replay.next_slot();
        let report = ReorganizeReport {
            rows,
            agents: layouts.len(),
            elements_moved: rows * store.fat_width,
        };
        (store, report)
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.layouts.len()
    }

    /// Rows stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Width of a fat row in `f32` elements (all agents).
    pub fn fat_row_width(&self) -> usize {
        self.fat_width
    }

    /// The ring slot the next [`InterleavedStore::push_step`] writes to.
    pub fn next_slot(&self) -> usize {
        self.next
    }

    /// Splits the interleaved table back into per-agent ring buffers — the
    /// inverse of [`InterleavedStore::reorganize_from`], used to express
    /// the store in the common snapshot format when checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::InvalidBatch`] if the store's bookkeeping is
    /// inconsistent (cannot happen through the public API).
    pub fn deinterleave(&self) -> Result<MultiAgentReplay, ReplayError> {
        let mut storages = Vec::with_capacity(self.layouts.len());
        for (a, l) in self.layouts.iter().enumerate() {
            let w = l.row_width();
            let off = self.offsets[a];
            let mut rows = Vec::with_capacity(self.len * w);
            for t in 0..self.len {
                let base = t * self.fat_width + off;
                rows.extend_from_slice(&self.data[base..base + w]);
            }
            storages.push(crate::storage::ReplayStorage::from_raw_parts(
                *l,
                self.capacity,
                self.len,
                self.next,
                &rows,
            )?);
        }
        MultiAgentReplay::from_storages(storages)
    }

    /// Appends one step (one transition per agent) directly in interleaved
    /// form, keeping the store incrementally up to date after the initial
    /// reorganization.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::AgentCountMismatch`] on a wrong transition
    /// count.
    pub fn push_step(&mut self, transitions: &[Transition]) -> Result<usize, ReplayError> {
        if transitions.len() != self.layouts.len() {
            return Err(ReplayError::AgentCountMismatch {
                expected: self.layouts.len(),
                got: transitions.len(),
            });
        }
        let slot = self.next;
        let base = slot * self.fat_width;
        for ((t, l), &off) in transitions.iter().zip(&self.layouts).zip(&self.offsets) {
            t.write_row(l, &mut self.data[base + off..base + off + l.row_width()]);
        }
        self.next = (self.next + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        Ok(slot)
    }

    /// Appends one step from borrowed rows, mirroring
    /// [`MultiAgentReplay::push_step_with`]: the closure is called once per
    /// agent index, and no intermediate `Vec`s are materialized. Returns
    /// the slot written.
    pub fn push_step_with<'a, F>(&mut self, mut f: F) -> usize
    where
        F: FnMut(usize) -> TransitionRef<'a>,
    {
        let slot = self.next;
        let base = slot * self.fat_width;
        for (agent, (l, &off)) in self.layouts.iter().zip(&self.offsets).enumerate() {
            f(agent).write_row(l, &mut self.data[base + off..base + off + l.row_width()]);
        }
        self.next = (self.next + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        slot
    }

    /// Borrows the fat row at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn fat_row(&self, idx: usize) -> &[f32] {
        assert!(idx < self.len, "row {idx} out of bounds (len {})", self.len);
        &self.data[idx * self.fat_width..(idx + 1) * self.fat_width]
    }

    /// Samples the joint mini-batch with a *single* pass over the common
    /// indices: each index fetches every agent's data from one contiguous
    /// fat row (`O(m)` instead of `O(N·m)`).
    ///
    /// # Errors
    ///
    /// Returns an index-range error if the plan references unstored rows.
    pub fn sample(&self, plan: &SamplePlan) -> Result<MultiBatch, ReplayError> {
        let mut out = MultiBatch::preallocate(&self.layouts, plan.batch_len());
        self.sample_into(plan, &mut out)?;
        Ok(out)
    }

    /// [`InterleavedStore::sample`] gathering into a caller-owned
    /// [`MultiBatch`], reusing its column storage: once `out` has seen a
    /// batch of this shape, the gather performs zero heap allocations.
    ///
    /// `out` is reshaped on first use (or agent-count change); its contents
    /// are unspecified if an error is returned.
    ///
    /// # Errors
    ///
    /// Returns an index-range error if the plan references unstored rows.
    pub fn sample_into(&self, plan: &SamplePlan, out: &mut MultiBatch) -> Result<(), ReplayError> {
        let batch = plan.batch_len();
        if out.agents.len() != self.layouts.len() {
            out.agents.clear();
            out.agents.extend(self.layouts.iter().map(|&l| AgentBatch::with_capacity(l, batch)));
        }
        out.set_plan_meta(plan);
        for (ab, &l) in out.agents.iter_mut().zip(&self.layouts) {
            ab.layout = l;
            ab.reset(batch);
        }
        for seg in &plan.segments {
            for idx in seg.iter() {
                if idx >= self.len {
                    return Err(ReplayError::IndexOutOfRange { index: idx, len: self.len });
                }
                let fat = &self.data[idx * self.fat_width..(idx + 1) * self.fat_width];
                for ((ab, l), &off) in out.agents.iter_mut().zip(&self.layouts).zip(&self.offsets) {
                    ab.push_row(&fat[off..off + l.row_width()]);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(l: &TransitionLayout, v: f32) -> Transition {
        Transition {
            obs: vec![v; l.obs_dim],
            action: vec![v; l.act_dim],
            reward: v,
            next_obs: vec![v + 0.5; l.obs_dim],
            done: 0.0,
        }
    }

    fn filled_replay(agents: usize, rows: usize) -> MultiAgentReplay {
        let layouts = vec![TransitionLayout::new(3, 2); agents];
        let mut r = MultiAgentReplay::new(&layouts, rows * 2);
        for t in 0..rows {
            let ts: Vec<Transition> =
                (0..agents).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            r.push_step(&ts).unwrap();
        }
        r
    }

    #[test]
    fn reorganize_preserves_every_row() {
        let replay = filled_replay(3, 25);
        let (store, report) = InterleavedStore::reorganize_from(&replay);
        assert_eq!(store.len(), 25);
        assert_eq!(report.rows, 25);
        assert_eq!(report.agents, 3);
        assert_eq!(report.elements_moved, 25 * store.fat_row_width());
        // Cross-check against the per-agent buffers through sampling.
        let plan = SamplePlan::from_indices(&(0..25).collect::<Vec<_>>());
        assert_eq!(store.sample(&plan).unwrap().agents, replay.sample(&plan).unwrap().agents);
    }

    #[test]
    fn incremental_push_matches_reorganized_layout() {
        let layouts = vec![TransitionLayout::new(3, 2); 2];
        let mut store = InterleavedStore::new(&layouts, 8);
        for t in 0..5 {
            let ts: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            store.push_step(&ts).unwrap();
        }
        let plan = SamplePlan::from_indices(&[0, 4]);
        let mb = store.sample(&plan).unwrap();
        assert_eq!(mb.agents[0].rewards, vec![0.0, 40.0]);
        assert_eq!(mb.agents[1].rewards, vec![1.0, 41.0]);
    }

    #[test]
    fn ring_wraps_fat_rows() {
        let layouts = vec![TransitionLayout::new(1, 1); 2];
        let mut store = InterleavedStore::new(&layouts, 2);
        for t in 0..3 {
            let ts: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            store.push_step(&ts).unwrap();
        }
        // slot 0 overwritten by t=2
        let plan = SamplePlan::from_indices(&[0, 1]);
        let mb = store.sample(&plan).unwrap();
        assert_eq!(mb.agents[0].rewards, vec![20.0, 10.0]);
    }

    #[test]
    fn reorganize_preserves_wrapped_ring_cursor() {
        let layouts = vec![TransitionLayout::new(2, 1); 2];
        let mut replay = MultiAgentReplay::new(&layouts, 4);
        for t in 0..6 {
            // wraps: cursor ends at slot 2
            let ts: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&ts).unwrap();
        }
        assert_eq!(replay.next_slot(), 2);
        let (mut store, _) = InterleavedStore::reorganize_from(&replay);
        assert_eq!(store.next_slot(), 2, "cursor must survive the reshape");
        // The next push overwrites the *oldest* row (slot 2 = t=2), exactly
        // as it would have in the per-agent buffers.
        let ts: Vec<Transition> =
            (0..2).map(|a| transition(&layouts[a], (60 + a) as f32)).collect();
        let slot = store.push_step(&ts).unwrap();
        assert_eq!(slot, 2);
        let mb = store.sample(&SamplePlan::from_indices(&[2])).unwrap();
        assert_eq!(mb.agents[0].rewards, vec![60.0]);
    }

    #[test]
    fn deinterleave_roundtrips_to_per_agent_buffers() {
        let replay = filled_replay(3, 25);
        let (store, _) = InterleavedStore::reorganize_from(&replay);
        let back = store.deinterleave().unwrap();
        assert_eq!(back.len(), replay.len());
        assert_eq!(back.capacity(), replay.capacity());
        assert_eq!(back.next_slot(), replay.next_slot());
        let plan = SamplePlan::from_indices(&(0..25).collect::<Vec<_>>());
        assert_eq!(back.sample(&plan).unwrap().agents, replay.sample(&plan).unwrap().agents);
    }

    #[test]
    fn deinterleave_preserves_wrapped_state() {
        let layouts = vec![TransitionLayout::new(1, 1); 2];
        let mut store = InterleavedStore::new(&layouts, 2);
        for t in 0..3 {
            let ts: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            store.push_step(&ts).unwrap();
        }
        let back = store.deinterleave().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.next_slot(), 1);
        let mb = back.sample(&SamplePlan::from_indices(&[0, 1])).unwrap();
        assert_eq!(mb.agents[0].rewards, vec![20.0, 10.0]);
    }

    #[test]
    fn sample_rejects_out_of_range() {
        let replay = filled_replay(2, 4);
        let (store, _) = InterleavedStore::reorganize_from(&replay);
        let plan = SamplePlan::from_indices(&[4]);
        assert!(store.sample(&plan).is_err());
    }

    #[test]
    fn wrong_agent_count_rejected() {
        let layouts = vec![TransitionLayout::new(1, 1); 3];
        let mut store = InterleavedStore::new(&layouts, 4);
        let err = store.push_step(&[transition(&layouts[0], 0.0)]).unwrap_err();
        assert!(matches!(err, ReplayError::AgentCountMismatch { expected: 3, got: 1 }));
    }

    #[test]
    fn fat_width_sums_agent_rows() {
        let layouts = vec![
            TransitionLayout::new(4, 2),
            TransitionLayout::new(3, 2),
            TransitionLayout::new(2, 1),
        ];
        let store = InterleavedStore::new(&layouts, 4);
        let expect: usize = layouts.iter().map(|l| l.row_width()).sum();
        assert_eq!(store.fat_row_width(), expect);
    }

    #[test]
    fn heterogeneous_layouts_roundtrip() {
        let layouts = vec![TransitionLayout::new(4, 2), TransitionLayout::new(2, 1)];
        let mut store = InterleavedStore::new(&layouts, 4);
        let ts = vec![transition(&layouts[0], 1.0), transition(&layouts[1], 2.0)];
        store.push_step(&ts).unwrap();
        let mb = store.sample(&SamplePlan::from_indices(&[0])).unwrap();
        assert_eq!(mb.agents[0].obs, vec![1.0; 4]);
        assert_eq!(mb.agents[1].obs, vec![2.0; 2]);
        assert_eq!(mb.agents[1].rewards, vec![2.0]);
    }
}
