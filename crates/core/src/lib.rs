//! # marl-core
//!
//! The paper's primary contribution as a library: multi-agent replay
//! storage and the mini-batch sampling optimizations evaluated in
//! *"Characterizing and Optimizing the End-to-End Performance of
//! Multi-Agent Reinforcement Learning Systems"* (IISWC 2024).
//!
//! * [`storage`] / [`multi`] — per-agent flat ring buffers pushed in
//!   lockstep and sampled with a common indices array (Figure 5).
//! * [`sampler::uniform`] — the baseline random mini-batch sampling.
//! * [`sampler::locality`] — intra-agent cache locality-aware neighbor
//!   sampling (Algorithm 1).
//! * [`sampler::per`] — proportional prioritized replay (the PER-MADDPG
//!   baseline) with Lemma-1 importance weights.
//! * [`sampler::ip_locality`] — information-prioritized locality-aware
//!   sampling: priority-chosen reference points + the threshold neighbor
//!   predictor.
//! * [`layout`] — transition data layout reorganization into an
//!   interleaved key-value store (`O(N·m)` → `O(m)` gathers).
//! * [`stats`] — access-pattern statistics feeding the cache/TLB model.
//!
//! ## Quickstart
//!
//! ```
//! use marl_core::config::SamplerConfig;
//! use marl_core::multi::MultiAgentReplay;
//! use marl_core::transition::{Transition, TransitionLayout};
//! use rand::SeedableRng;
//!
//! let layouts = vec![TransitionLayout::new(16, 5); 3]; // 3 predators
//! let mut replay = MultiAgentReplay::new(&layouts, 100_000);
//! for t in 0..2048 {
//!     let step: Vec<Transition> = layouts
//!         .iter()
//!         .map(|l| Transition {
//!             obs: vec![t as f32; l.obs_dim],
//!             action: vec![0.0; l.act_dim],
//!             reward: 0.0,
//!             next_obs: vec![0.0; l.obs_dim],
//!             done: 0.0,
//!         })
//!         .collect();
//!     replay.push_step(&step)?;
//! }
//!
//! let mut sampler = SamplerConfig::LocalityN64R16.build(replay.capacity());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let plan = sampler.plan(replay.len(), 1024, &mut rng)?;
//! let batch = replay.sample(&plan)?;
//! assert_eq!(batch.len(), 1024);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod crc32;
pub mod error;
pub mod indices;
pub mod layout;
pub mod multi;
pub mod sampler;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod sumtree;
pub mod transition;

pub use config::SamplerConfig;
pub use error::ReplayError;
pub use indices::{SamplePlan, Segment};
pub use layout::InterleavedStore;
pub use multi::MultiAgentReplay;
pub use sampler::{Sampler, SamplerState};
pub use storage::ReplayStorage;
pub use transition::{AgentBatch, MultiBatch, Transition, TransitionLayout, TransitionRef};
