//! Compact binary snapshots of replay buffers.
//!
//! Long characterization runs (the paper's take days) need their replay
//! state persisted and restored; JSON is impractical at 1 M rows ×
//! hundreds of floats, so snapshots use a versioned little-endian binary
//! framing built on [`bytes`].
//!
//! Version 2 (the current write path) protects the payload with a CRC-32,
//! so a torn or bit-flipped snapshot is *detected* instead of silently
//! mis-loaded; version 1 frames (no checksum) remain readable.

use crate::crc32::crc32;
use crate::error::ReplayError;
use crate::multi::MultiAgentReplay;
use crate::storage::ReplayStorage;
use crate::transition::TransitionLayout;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix of a snapshot frame.
const MAGIC: u32 = 0x4D41_524C; // "MARL"
/// Current framing version: body is followed by a leading CRC-32.
const VERSION: u16 = 2;
/// Legacy framing without a checksum (still decodable).
const VERSION_V1: u16 = 1;

/// Errors from decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// Unsupported framing version.
    BadVersion(u16),
    /// The frame ended before the declared payload.
    Truncated,
    /// Internal inconsistency (e.g. length exceeding capacity).
    Corrupt(&'static str),
    /// The payload checksum does not match (bit rot / torn write).
    ChecksumMismatch {
        /// CRC-32 declared in the frame header.
        expected: u32,
        /// CRC-32 computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a replay snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (expected {expected:#010x}, got {actual:#010x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes one agent's buffer into `out`.
fn encode_storage(storage: &ReplayStorage, out: &mut BytesMut) {
    let l = storage.layout();
    out.put_u32_le(l.obs_dim as u32);
    out.put_u32_le(l.act_dim as u32);
    out.put_u64_le(storage.capacity() as u64);
    out.put_u64_le(storage.len() as u64);
    out.put_u64_le(storage.next_slot() as u64);
    for row in 0..storage.len() {
        for &x in storage.row(row) {
            out.put_f32_le(x);
        }
    }
}

fn decode_storage(buf: &mut Bytes) -> Result<ReplayStorage, SnapshotError> {
    if buf.remaining() < 4 + 4 + 8 + 8 + 8 {
        return Err(SnapshotError::Truncated);
    }
    let obs_dim = buf.get_u32_le() as usize;
    let act_dim = buf.get_u32_le() as usize;
    let capacity = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    let next = buf.get_u64_le() as usize;
    if capacity == 0 {
        return Err(SnapshotError::Corrupt("zero capacity"));
    }
    if len > capacity || next >= capacity.max(1) {
        return Err(SnapshotError::Corrupt("length/cursor out of range"));
    }
    let layout = TransitionLayout::new(obs_dim, act_dim);
    let w = layout.row_width();
    // Guard against hostile headers demanding absurd allocations: the
    // backing store may not exceed 2^31 floats (8 GiB).
    if capacity.saturating_mul(w) > (1usize << 31) {
        return Err(SnapshotError::Corrupt("implausible capacity"));
    }
    if buf.remaining() < len * w * 4 {
        return Err(SnapshotError::Truncated);
    }
    let mut rows = vec![0.0f32; len * w];
    for x in rows.iter_mut() {
        *x = buf.get_f32_le();
    }
    ReplayStorage::from_raw_parts(layout, capacity, len, next, &rows)
        .map_err(|_| SnapshotError::Corrupt("inconsistent storage header"))
}

/// Serializes a multi-agent replay into a framed binary snapshot.
///
/// # Examples
///
/// ```
/// use marl_core::multi::MultiAgentReplay;
/// use marl_core::snapshot::{decode_replay, encode_replay};
/// use marl_core::transition::TransitionLayout;
///
/// let replay = MultiAgentReplay::new(&[TransitionLayout::new(4, 2); 2], 16);
/// let bytes = encode_replay(&replay);
/// let restored = decode_replay(bytes).unwrap();
/// assert_eq!(restored.agent_count(), 2);
/// ```
pub fn encode_replay(replay: &MultiAgentReplay) -> Bytes {
    let body = encode_body(replay);
    let mut out = BytesMut::new();
    out.put_u32_le(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(crc32(&body));
    out.put_slice(&body);
    out.freeze()
}

/// Encodes the version-independent body (agent count + storages).
fn encode_body(replay: &MultiAgentReplay) -> BytesMut {
    let mut body = BytesMut::new();
    body.put_u32_le(replay.agent_count() as u32);
    for a in 0..replay.agent_count() {
        encode_storage(replay.buffer(a), &mut body);
    }
    body
}

/// Decodes a snapshot produced by [`encode_replay`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] for malformed input.
pub fn decode_replay(mut buf: Bytes) -> Result<MultiAgentReplay, SnapshotError> {
    if buf.remaining() < 6 {
        return Err(SnapshotError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    match version {
        VERSION => {
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated);
            }
            let expected = buf.get_u32_le();
            let actual = crc32(&buf);
            if actual != expected {
                return Err(SnapshotError::ChecksumMismatch { expected, actual });
            }
        }
        VERSION_V1 => {} // legacy: no checksum to verify
        other => return Err(SnapshotError::BadVersion(other)),
    }
    decode_body(buf)
}

/// Decodes the version-independent body (agent count + storages).
fn decode_body(mut buf: Bytes) -> Result<MultiAgentReplay, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let agents = buf.get_u32_le() as usize;
    if agents == 0 {
        return Err(SnapshotError::Corrupt("zero agents"));
    }
    // Never pre-allocate by an untrusted count: each agent frame needs at
    // least its 32-byte header, so an agent count beyond the remaining
    // bytes is certainly corrupt.
    if agents > buf.remaining() / 32 {
        return Err(SnapshotError::Truncated);
    }
    let mut storages = Vec::with_capacity(agents);
    for _ in 0..agents {
        storages.push(decode_storage(&mut buf)?);
    }
    MultiAgentReplay::from_storages(storages)
        .map_err(|_| SnapshotError::Corrupt("agents disagree on length/capacity"))
}

/// The fallible-conversion error alias used by replay snapshot helpers.
impl From<SnapshotError> for ReplayError {
    fn from(e: SnapshotError) -> Self {
        ReplayError::InvalidBatch { reason: format!("snapshot: {e}") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::Transition;

    fn transition(l: &TransitionLayout, v: f32) -> Transition {
        Transition {
            obs: vec![v; l.obs_dim],
            action: vec![v * 0.5; l.act_dim],
            reward: v,
            next_obs: vec![v + 1.0; l.obs_dim],
            done: 0.0,
        }
    }

    fn filled(agents: usize, capacity: usize, pushes: usize) -> MultiAgentReplay {
        let layouts = vec![TransitionLayout::new(3, 2); agents];
        let mut r = MultiAgentReplay::new(&layouts, capacity);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..agents).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            r.push_step(&step).unwrap();
        }
        r
    }

    #[test]
    fn roundtrip_partial_buffer() {
        let r = filled(3, 32, 10);
        let restored = decode_replay(encode_replay(&r)).unwrap();
        assert_eq!(restored.len(), 10);
        assert_eq!(restored.agent_count(), 3);
        for a in 0..3 {
            for t in 0..10 {
                assert_eq!(restored.buffer(a).transition(t), r.buffer(a).transition(t));
            }
        }
        assert_eq!(restored.next_slot(), r.next_slot());
    }

    #[test]
    fn roundtrip_wrapped_ring() {
        let r = filled(2, 8, 21); // wraps twice
        let restored = decode_replay(encode_replay(&r)).unwrap();
        assert_eq!(restored.len(), 8);
        assert_eq!(restored.next_slot(), r.next_slot());
        for a in 0..2 {
            for slot in 0..8 {
                assert_eq!(restored.buffer(a).transition(slot), r.buffer(a).transition(slot));
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_replay(Bytes::from_static(b"not a snapshot....")).unwrap_err();
        assert_eq!(err, SnapshotError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let r = filled(2, 8, 5);
        let full = encode_replay(&r);
        for cut in [0usize, 5, 12, full.len() - 3] {
            let err = decode_replay(full.slice(..cut)).unwrap_err();
            // A cut inside the checksummed payload surfaces as a checksum
            // mismatch; either way the decoder errors instead of mis-loading.
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let r = filled(2, 16, 9);
        let full = encode_replay(&r);
        // Flip one bit in every byte of the payload (past the 10-byte
        // header); each must be caught by the CRC.
        for byte in [10usize, 20, full.len() / 2, full.len() - 1] {
            let mut bad = BytesMut::from(&full[..]);
            bad[byte] ^= 0x10;
            let err = decode_replay(bad.freeze()).unwrap_err();
            assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }), "byte={byte}: {err:?}");
        }
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        let r = filled(2, 8, 5);
        // A V1 frame is header (magic + version 1) + body, no checksum.
        let mut v1 = BytesMut::new();
        v1.put_u32_le(MAGIC);
        v1.put_u16_le(VERSION_V1);
        v1.put_slice(&encode_body(&r));
        let restored = decode_replay(v1.freeze()).unwrap();
        assert_eq!(restored.len(), 5);
        for a in 0..2 {
            for t in 0..5 {
                assert_eq!(restored.buffer(a).transition(t), r.buffer(a).transition(t));
            }
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let r = filled(1, 4, 1);
        let full = encode_replay(&r);
        let mut bad = BytesMut::from(&full[..]);
        bad[4] = 99; // version byte
        let err = decode_replay(bad.freeze()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadVersion(_)));
    }

    #[test]
    fn hostile_capacity_rejected_without_allocation() {
        // Encoded as a V1 frame so the bomb reaches the capacity guard
        // directly (a V2 frame would already fail its checksum).
        let mut out = BytesMut::new();
        out.put_u32_le(MAGIC);
        out.put_u16_le(VERSION_V1);
        out.put_u32_le(1); // one agent
        out.put_u32_le(1000); // obs_dim
        out.put_u32_le(5); // act_dim
        out.put_u64_le(u64::MAX); // capacity bomb
        out.put_u64_le(0);
        out.put_u64_le(0);
        let err = decode_replay(out.freeze()).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn snapshot_error_converts_to_replay_error() {
        let e: ReplayError = SnapshotError::BadMagic.into();
        assert!(e.to_string().contains("snapshot"));
    }
}
