//! Flat ring-buffer storage for one agent's transitions.
//!
//! This is the `Mem[Agent_k]` of the paper's Figure 5: a contiguous
//! row-major array of up to `capacity` transitions that the samplers index
//! into. The storage layer deliberately exposes *gather* primitives both
//! for scattered indices (baseline random sampling) and contiguous runs
//! (cache locality-aware sampling) so the two access patterns can be
//! compared on identical data.

use crate::error::ReplayError;
use crate::transition::{Transition, TransitionLayout, TransitionRef};

/// A fixed-capacity ring buffer of transition rows for a single agent.
///
/// # Examples
///
/// ```
/// use marl_core::storage::ReplayStorage;
/// use marl_core::transition::{Transition, TransitionLayout};
///
/// let layout = TransitionLayout::new(4, 2);
/// let mut buf = ReplayStorage::new(layout, 8);
/// buf.push(&Transition {
///     obs: vec![0.0; 4],
///     action: vec![1.0, 0.0],
///     reward: 1.0,
///     next_obs: vec![0.0; 4],
///     done: 0.0,
/// });
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayStorage {
    layout: TransitionLayout,
    capacity: usize,
    data: Vec<f32>,
    len: usize,
    next: usize,
}

impl ReplayStorage {
    /// Creates an empty buffer holding up to `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(layout: TransitionLayout, capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayStorage {
            layout,
            capacity,
            data: vec![0.0; capacity * layout.row_width()],
            len: 0,
            next: 0,
        }
    }

    /// Row layout.
    pub fn layout(&self) -> &TransitionLayout {
        &self.layout
    }

    /// Maximum number of rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid rows currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot the next push will write (used to keep multi-agent buffers
    /// aligned).
    pub fn next_slot(&self) -> usize {
        self.next
    }

    /// Appends a transition, overwriting the oldest once full. Returns the
    /// slot written.
    pub fn push(&mut self, t: &Transition) -> usize {
        let w = self.layout.row_width();
        let slot = self.next;
        t.write_row(&self.layout, &mut self.data[slot * w..(slot + 1) * w]);
        self.next = (self.next + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        slot
    }

    /// Appends a borrowed transition without intermediate `Vec`s; same ring
    /// semantics as [`ReplayStorage::push`]. Returns the slot written.
    ///
    /// # Panics
    ///
    /// Panics if the component sizes disagree with the layout.
    pub fn push_ref(&mut self, t: &TransitionRef<'_>) -> usize {
        let w = self.layout.row_width();
        let slot = self.next;
        t.write_row(&self.layout, &mut self.data[slot * w..(slot + 1) * w]);
        self.next = (self.next + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        slot
    }

    /// Borrows row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn row(&self, idx: usize) -> &[f32] {
        assert!(idx < self.len, "row index {idx} out of bounds (len {})", self.len);
        let w = self.layout.row_width();
        &self.data[idx * w..(idx + 1) * w]
    }

    /// Decodes row `idx` into a [`Transition`].
    pub fn transition(&self, idx: usize) -> Transition {
        Transition::from_row(&self.layout, self.row(idx))
    }

    /// Gathers scattered rows into `out` (row-major, appended).
    ///
    /// This is the baseline random mini-batch access pattern: one
    /// unpredictable row read per index.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::IndexOutOfRange`] if any index exceeds the
    /// stored length.
    pub fn gather(&self, indices: &[usize], out: &mut Vec<f32>) -> Result<(), ReplayError> {
        let w = self.layout.row_width();
        out.reserve(indices.len() * w);
        for &idx in indices {
            if idx >= self.len {
                return Err(ReplayError::IndexOutOfRange { index: idx, len: self.len });
            }
            out.extend_from_slice(&self.data[idx * w..(idx + 1) * w]);
        }
        Ok(())
    }

    /// Gathers `count` *contiguous* rows starting at `start` into `out`.
    ///
    /// This is the cache locality-aware access pattern: a single streaming
    /// read the hardware prefetcher can follow (one `memcpy` of
    /// `count × row_width` floats).
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::IndexOutOfRange`] if the run exceeds the
    /// stored length.
    pub fn gather_run(
        &self,
        start: usize,
        count: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), ReplayError> {
        if start + count > self.len {
            return Err(ReplayError::IndexOutOfRange {
                index: start + count.saturating_sub(1),
                len: self.len,
            });
        }
        let w = self.layout.row_width();
        out.extend_from_slice(&self.data[start * w..(start + count) * w]);
        Ok(())
    }

    /// Raw view of the valid prefix of the storage (first `len` rows).
    /// Used by the layout reorganizer, which streams whole buffers.
    pub fn raw_rows(&self) -> &[f32] {
        &self.data[..self.len * self.layout.row_width()]
    }

    /// Clears the buffer without deallocating.
    pub fn clear(&mut self) {
        self.len = 0;
        self.next = 0;
    }

    /// Reconstructs a storage from raw parts (snapshot restore): `rows`
    /// holds `len` rows in **slot order**.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::InvalidBatch`] when the parts are
    /// inconsistent.
    pub fn from_raw_parts(
        layout: TransitionLayout,
        capacity: usize,
        len: usize,
        next: usize,
        rows: &[f32],
    ) -> Result<Self, ReplayError> {
        if capacity == 0 || len > capacity || next >= capacity {
            return Err(ReplayError::InvalidBatch {
                reason: "inconsistent capacity/len/cursor".into(),
            });
        }
        let w = layout.row_width();
        if rows.len() != len * w {
            return Err(ReplayError::InvalidBatch {
                reason: format!("expected {} row floats, got {}", len * w, rows.len()),
            });
        }
        let mut storage = ReplayStorage::new(layout, capacity);
        storage.data[..rows.len()].copy_from_slice(rows);
        storage.len = len;
        storage.next = next;
        Ok(storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f32) -> Transition {
        Transition {
            obs: vec![v, v],
            action: vec![v],
            reward: v,
            next_obs: vec![v + 1.0, v + 1.0],
            done: 0.0,
        }
    }

    fn storage(cap: usize) -> ReplayStorage {
        ReplayStorage::new(TransitionLayout::new(2, 1), cap)
    }

    #[test]
    fn push_and_read_back() {
        let mut s = storage(4);
        s.push(&t(1.0));
        s.push(&t(2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.transition(0), t(1.0));
        assert_eq!(s.transition(1), t(2.0));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut s = storage(2);
        s.push(&t(1.0));
        s.push(&t(2.0));
        let slot = s.push(&t(3.0));
        assert_eq!(slot, 0, "wraps to slot 0");
        assert_eq!(s.len(), 2);
        assert_eq!(s.transition(0), t(3.0));
        assert_eq!(s.transition(1), t(2.0));
    }

    #[test]
    fn gather_scattered_matches_rows() {
        let mut s = storage(8);
        for i in 0..8 {
            s.push(&t(i as f32));
        }
        let mut out = Vec::new();
        s.gather(&[7, 0, 3], &mut out).unwrap();
        let w = s.layout().row_width();
        assert_eq!(&out[..w], s.row(7));
        assert_eq!(&out[w..2 * w], s.row(0));
        assert_eq!(&out[2 * w..], s.row(3));
    }

    #[test]
    fn gather_rejects_out_of_range() {
        let mut s = storage(4);
        s.push(&t(0.0));
        let mut out = Vec::new();
        let err = s.gather(&[1], &mut out).unwrap_err();
        assert!(matches!(err, ReplayError::IndexOutOfRange { index: 1, len: 1 }));
    }

    #[test]
    fn gather_run_equals_scattered_gather_of_same_range() {
        let mut s = storage(16);
        for i in 0..16 {
            s.push(&t(i as f32));
        }
        let mut contiguous = Vec::new();
        s.gather_run(4, 5, &mut contiguous).unwrap();
        let mut scattered = Vec::new();
        s.gather(&[4, 5, 6, 7, 8], &mut scattered).unwrap();
        assert_eq!(contiguous, scattered);
    }

    #[test]
    fn gather_run_bounds_check() {
        let mut s = storage(4);
        s.push(&t(0.0));
        s.push(&t(1.0));
        let mut out = Vec::new();
        assert!(s.gather_run(1, 2, &mut out).is_err());
        assert!(s.gather_run(0, 2, &mut out).is_ok());
    }

    #[test]
    fn gather_appends_after_existing_contents() {
        let mut s = storage(8);
        for i in 0..8 {
            s.push(&t(i as f32));
        }
        let w = s.layout().row_width();
        // A reused buffer may arrive non-empty: gather must append after
        // the existing prefix, not clobber it.
        let mut out = vec![-1.0f32; 3];
        s.gather(&[2, 5], &mut out).unwrap();
        assert_eq!(&out[..3], &[-1.0, -1.0, -1.0]);
        assert_eq!(&out[3..3 + w], s.row(2));
        assert_eq!(&out[3 + w..], s.row(5));
    }

    #[test]
    fn gather_into_cleared_larger_buffer_reuses_capacity() {
        let mut s = storage(8);
        for i in 0..8 {
            s.push(&t(i as f32));
        }
        let w = s.layout().row_width();
        // Warm the buffer with a *larger* gather, then clear and regather
        // fewer rows: the allocation must be reused (pointer-stable) and
        // no stale tail may leak into the result.
        let mut out = Vec::new();
        s.gather(&[0, 1, 2, 3, 4, 5], &mut out).unwrap();
        let ptr = out.as_ptr();
        out.clear();
        s.gather(&[7, 6], &mut out).unwrap();
        assert_eq!(out.as_ptr(), ptr, "capacity must be reused");
        assert_eq!(out.len(), 2 * w, "no stale rows beyond the new gather");
        assert_eq!(&out[..w], s.row(7));
        assert_eq!(&out[w..], s.row(6));
    }

    #[test]
    fn gather_run_into_cleared_larger_buffer_reuses_capacity() {
        let mut s = storage(16);
        for i in 0..16 {
            s.push(&t(i as f32));
        }
        let w = s.layout().row_width();
        let mut out = Vec::new();
        s.gather_run(0, 12, &mut out).unwrap();
        let ptr = out.as_ptr();
        out.clear();
        s.gather_run(3, 4, &mut out).unwrap();
        assert_eq!(out.as_ptr(), ptr, "capacity must be reused");
        assert_eq!(out.len(), 4 * w);
        for (r, idx) in (3..7).enumerate() {
            assert_eq!(&out[r * w..(r + 1) * w], s.row(idx));
        }
    }

    #[test]
    fn gather_run_appends_after_existing_contents() {
        let mut s = storage(8);
        for i in 0..8 {
            s.push(&t(i as f32));
        }
        let w = s.layout().row_width();
        let mut out = Vec::new();
        s.gather_run(0, 2, &mut out).unwrap();
        s.gather_run(5, 1, &mut out).unwrap();
        assert_eq!(out.len(), 3 * w);
        assert_eq!(&out[2 * w..], s.row(5), "second gather appends");
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut s = storage(4);
        s.push(&t(0.0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 4);
        assert_eq!(s.next_slot(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = storage(0);
    }
}
