//! Access-pattern statistics derived from sample plans: the quantities the
//! paper's hardware analysis (Figure 4, cache-miss reductions) is built on.

use crate::indices::SamplePlan;
use crate::transition::TransitionLayout;
use serde::{Deserialize, Serialize};

/// Memory-access statistics for executing one plan against one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Rows gathered.
    pub rows: usize,
    /// Bytes read from the replay storage.
    pub bytes_read: usize,
    /// Unpredictable address jumps (one per plan segment).
    pub random_jumps: usize,
    /// Distinct 64-byte cache lines touched (upper bound, assuming rows are
    /// line-aligned and segments do not overlap).
    pub cache_lines_touched: usize,
    /// Distinct 4 KiB pages touched (upper bound).
    pub pages_touched: usize,
}

/// Derives access statistics for `plan` against a buffer of rows shaped by
/// `layout`.
///
/// # Examples
///
/// ```
/// use marl_core::indices::SamplePlan;
/// use marl_core::stats::plan_stats;
/// use marl_core::transition::TransitionLayout;
///
/// let plan = SamplePlan::from_indices(&[0, 100, 200]);
/// let s = plan_stats(&plan, &TransitionLayout::new(16, 5));
/// assert_eq!(s.rows, 3);
/// assert_eq!(s.random_jumps, 3);
/// ```
pub fn plan_stats(plan: &SamplePlan, layout: &TransitionLayout) -> AccessStats {
    const LINE: usize = 64;
    const PAGE: usize = 4096;
    let row_bytes = layout.row_bytes();
    let mut bytes = 0usize;
    let mut lines = 0usize;
    let mut pages = std::collections::HashSet::new();
    for seg in &plan.segments {
        let seg_bytes = seg.len * row_bytes;
        bytes += seg_bytes;
        // A contiguous run of b bytes spans at most b/LINE + 1 lines.
        lines += seg_bytes / LINE + 1;
        let start_b = seg.start * row_bytes;
        for p in (start_b / PAGE)..=((start_b + seg_bytes.saturating_sub(1)) / PAGE) {
            pages.insert(p);
        }
    }
    AccessStats {
        rows: plan.batch_len(),
        bytes_read: bytes,
        random_jumps: plan.random_jumps(),
        cache_lines_touched: lines,
        pages_touched: pages.len(),
    }
}

/// Aggregated statistics for one *full trainer iteration*: every one of the
/// `agents` trainers gathers from every agent's buffer with a fresh plan,
/// so costs scale as O(N²·B) — the paper's key scaling observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Number of (trainer, buffer) gathers performed: `agents²`.
    pub gathers: usize,
    /// Total rows moved.
    pub rows: usize,
    /// Total bytes moved.
    pub bytes_read: usize,
    /// Total random jumps.
    pub random_jumps: usize,
}

/// Scales single-plan stats to a full update-all-trainers iteration for
/// `agents` trainers each gathering from `agents` buffers.
pub fn iteration_stats(per_plan: &AccessStats, agents: usize) -> IterationStats {
    let gathers = agents * agents;
    IterationStats {
        gathers,
        rows: per_plan.rows * gathers,
        bytes_read: per_plan.bytes_read * gathers,
        random_jumps: per_plan.random_jumps * gathers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indices::Segment;

    #[test]
    fn scattered_plan_touches_many_lines() {
        let layout = TransitionLayout::new(16, 5); // 39 floats = 156 bytes
        let plan = SamplePlan::from_indices(&(0..64).map(|i| i * 1000).collect::<Vec<_>>());
        let s = plan_stats(&plan, &layout);
        assert_eq!(s.rows, 64);
        assert_eq!(s.random_jumps, 64);
        assert_eq!(s.bytes_read, 64 * 156);
        assert!(s.pages_touched >= 64); // rows are far apart; some straddle two pages
    }

    #[test]
    fn contiguous_plan_shares_pages() {
        let layout = TransitionLayout::new(16, 5);
        let plan = SamplePlan { segments: vec![Segment::run(0, 64)], weights: None };
        let s = plan_stats(&plan, &layout);
        assert_eq!(s.rows, 64);
        assert_eq!(s.random_jumps, 1);
        // 64*156 = 9984 bytes ≈ 3 pages, far fewer than 64
        assert!(s.pages_touched <= 3);
        let scattered = plan_stats(
            &SamplePlan::from_indices(&(0..64).map(|i| i * 1000).collect::<Vec<_>>()),
            &layout,
        );
        assert!(s.cache_lines_touched < scattered.cache_lines_touched);
    }

    #[test]
    fn iteration_scales_quadratically() {
        let layout = TransitionLayout::new(4, 2);
        let plan = SamplePlan::from_indices(&[0, 1, 2, 3]);
        let per = plan_stats(&plan, &layout);
        let i3 = iteration_stats(&per, 3);
        let i6 = iteration_stats(&per, 6);
        assert_eq!(i3.gathers, 9);
        assert_eq!(i6.gathers, 36);
        assert_eq!(i6.bytes_read, 4 * i3.bytes_read);
    }
}
