//! Sample plans: the "common indices array" of the paper's Figure 5,
//! encoded as segments so that contiguous neighbor runs stay visible to the
//! gather executor, the statistics collector, and the cache simulator.

use serde::{Deserialize, Serialize};

/// A contiguous run of rows `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// First row index.
    pub start: usize,
    /// Run length (≥ 1).
    pub len: usize,
}

impl Segment {
    /// A single-row segment.
    pub fn single(index: usize) -> Self {
        Segment { start: index, len: 1 }
    }

    /// A multi-row run.
    pub fn run(start: usize, len: usize) -> Self {
        debug_assert!(len >= 1);
        Segment { start, len }
    }

    /// Iterates the indices covered by this segment.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.start..self.start + self.len
    }
}

/// The common index plan one agent trainer uses against *every* agent's
/// replay buffer for one mini-batch.
///
/// Random (baseline) sampling produces `batch_len` single-row segments;
/// cache locality-aware sampling produces `refs` segments of `neighbors`
/// rows each; information-prioritized sampling produces variable-length
/// segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePlan {
    /// Ordered gather segments.
    pub segments: Vec<Segment>,
    /// Importance-sampling weight per *row* (flattened over segments);
    /// `None` when sampling is uniform/unweighted.
    pub weights: Option<Vec<f32>>,
}

impl SamplePlan {
    /// An empty plan.
    pub fn new() -> Self {
        SamplePlan { segments: Vec::new(), weights: None }
    }

    /// Builds a plan of single-row segments from raw indices.
    pub fn from_indices(indices: &[usize]) -> Self {
        SamplePlan {
            segments: indices.iter().map(|&i| Segment::single(i)).collect(),
            weights: None,
        }
    }

    /// Total rows this plan gathers.
    pub fn batch_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Whether the plan gathers nothing.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Flattens into the per-row index list (the literal indices array).
    pub fn flatten(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch_len());
        self.flatten_into(&mut out);
        out
    }

    /// [`SamplePlan::flatten`] writing into a cleared, caller-owned vector
    /// (allocation-free once the vector has capacity).
    pub fn flatten_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for s in &self.segments {
            out.extend(s.iter());
        }
    }

    /// Number of *random jumps* the gather performs: one per segment
    /// (each segment start is an unpredictable address; rows within a
    /// segment stream sequentially).
    pub fn random_jumps(&self) -> usize {
        self.segments.len()
    }

    /// Fraction of rows that are streamed sequentially after a jump
    /// (`0.0` for fully random plans, approaching `1.0` for long runs).
    pub fn sequential_fraction(&self) -> f64 {
        let total = self.batch_len();
        if total == 0 {
            return 0.0;
        }
        (total - self.segments.len()) as f64 / total as f64
    }

    /// Folds this plan into three running CRC-32 digests — the drawn row
    /// indices (flattened, as `u64` little-endian), the segment run
    /// lengths (`u64` little-endian), and the IS weight bit patterns
    /// (`f32::to_bits`, little-endian; nothing is hashed when the plan is
    /// unweighted, so uniform plans digest identically regardless of how
    /// "no weights" is represented).
    ///
    /// This is the sampler-side trace hook of the conformance harness:
    /// hashing bit patterns (not rounded decimals) makes the digest exact
    /// and layout/thread-count independent.
    pub fn digest_into(
        &self,
        indices: &mut crate::crc32::Crc32,
        runs: &mut crate::crc32::Crc32,
        weights: &mut crate::crc32::Crc32,
    ) {
        for s in &self.segments {
            for i in s.iter() {
                indices.update(&(i as u64).to_le_bytes());
            }
            runs.update(&(s.len as u64).to_le_bytes());
        }
        if let Some(w) = &self.weights {
            for &x in w {
                weights.update(&x.to_bits().to_le_bytes());
            }
        }
    }
}

impl Default for SamplePlan {
    fn default() -> Self {
        SamplePlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_builds_singles() {
        let p = SamplePlan::from_indices(&[5, 2, 9]);
        assert_eq!(p.batch_len(), 3);
        assert_eq!(p.random_jumps(), 3);
        assert_eq!(p.flatten(), vec![5, 2, 9]);
        assert_eq!(p.sequential_fraction(), 0.0);
    }

    #[test]
    fn runs_flatten_in_order() {
        let p =
            SamplePlan { segments: vec![Segment::run(10, 3), Segment::single(2)], weights: None };
        assert_eq!(p.batch_len(), 4);
        assert_eq!(p.flatten(), vec![10, 11, 12, 2]);
        assert_eq!(p.random_jumps(), 2);
        assert_eq!(p.sequential_fraction(), 0.5);
    }

    #[test]
    fn empty_plan() {
        let p = SamplePlan::new();
        assert!(p.is_empty());
        assert_eq!(p.batch_len(), 0);
        assert_eq!(p.sequential_fraction(), 0.0);
    }

    #[test]
    fn long_runs_approach_full_sequentiality() {
        let p = SamplePlan { segments: vec![Segment::run(0, 1024)], weights: None };
        assert!(p.sequential_fraction() > 0.999);
    }

    #[test]
    fn digest_distinguishes_indices_runs_and_weights() {
        use crate::crc32::Crc32;
        let digest = |p: &SamplePlan| {
            let (mut i, mut r, mut w) = (Crc32::new(), Crc32::new(), Crc32::new());
            p.digest_into(&mut i, &mut r, &mut w);
            (i.finish(), r.finish(), w.finish())
        };
        // Same flattened indices, different segmentation: the index digest
        // matches while the run digest differs.
        let singles = SamplePlan::from_indices(&[4, 5, 6]);
        let run = SamplePlan { segments: vec![Segment::run(4, 3)], weights: None };
        assert_eq!(digest(&singles).0, digest(&run).0);
        assert_ne!(digest(&singles).1, digest(&run).1);
        // Unweighted plans hash nothing into the weight digest.
        assert_eq!(digest(&singles).2, 0);
        let weighted =
            SamplePlan { segments: vec![Segment::run(4, 3)], weights: Some(vec![0.5, 0.25, 1.0]) };
        assert_ne!(digest(&weighted).2, 0);
        assert_eq!(digest(&weighted).0, digest(&run).0);
    }
}
