//! Sample plans: the "common indices array" of the paper's Figure 5,
//! encoded as segments so that contiguous neighbor runs stay visible to the
//! gather executor, the statistics collector, and the cache simulator.

use serde::{Deserialize, Serialize};

/// A contiguous run of rows `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// First row index.
    pub start: usize,
    /// Run length (≥ 1).
    pub len: usize,
}

impl Segment {
    /// A single-row segment.
    pub fn single(index: usize) -> Self {
        Segment { start: index, len: 1 }
    }

    /// A multi-row run.
    pub fn run(start: usize, len: usize) -> Self {
        debug_assert!(len >= 1);
        Segment { start, len }
    }

    /// Iterates the indices covered by this segment.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.start..self.start + self.len
    }
}

/// The common index plan one agent trainer uses against *every* agent's
/// replay buffer for one mini-batch.
///
/// Random (baseline) sampling produces `batch_len` single-row segments;
/// cache locality-aware sampling produces `refs` segments of `neighbors`
/// rows each; information-prioritized sampling produces variable-length
/// segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePlan {
    /// Ordered gather segments.
    pub segments: Vec<Segment>,
    /// Importance-sampling weight per *row* (flattened over segments);
    /// `None` when sampling is uniform/unweighted.
    pub weights: Option<Vec<f32>>,
}

impl SamplePlan {
    /// An empty plan.
    pub fn new() -> Self {
        SamplePlan { segments: Vec::new(), weights: None }
    }

    /// Builds a plan of single-row segments from raw indices.
    pub fn from_indices(indices: &[usize]) -> Self {
        SamplePlan {
            segments: indices.iter().map(|&i| Segment::single(i)).collect(),
            weights: None,
        }
    }

    /// Total rows this plan gathers.
    pub fn batch_len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Whether the plan gathers nothing.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Flattens into the per-row index list (the literal indices array).
    pub fn flatten(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch_len());
        self.flatten_into(&mut out);
        out
    }

    /// [`SamplePlan::flatten`] writing into a cleared, caller-owned vector
    /// (allocation-free once the vector has capacity).
    pub fn flatten_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for s in &self.segments {
            out.extend(s.iter());
        }
    }

    /// Number of *random jumps* the gather performs: one per segment
    /// (each segment start is an unpredictable address; rows within a
    /// segment stream sequentially).
    pub fn random_jumps(&self) -> usize {
        self.segments.len()
    }

    /// Fraction of rows that are streamed sequentially after a jump
    /// (`0.0` for fully random plans, approaching `1.0` for long runs).
    pub fn sequential_fraction(&self) -> f64 {
        let total = self.batch_len();
        if total == 0 {
            return 0.0;
        }
        (total - self.segments.len()) as f64 / total as f64
    }
}

impl Default for SamplePlan {
    fn default() -> Self {
        SamplePlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_builds_singles() {
        let p = SamplePlan::from_indices(&[5, 2, 9]);
        assert_eq!(p.batch_len(), 3);
        assert_eq!(p.random_jumps(), 3);
        assert_eq!(p.flatten(), vec![5, 2, 9]);
        assert_eq!(p.sequential_fraction(), 0.0);
    }

    #[test]
    fn runs_flatten_in_order() {
        let p =
            SamplePlan { segments: vec![Segment::run(10, 3), Segment::single(2)], weights: None };
        assert_eq!(p.batch_len(), 4);
        assert_eq!(p.flatten(), vec![10, 11, 12, 2]);
        assert_eq!(p.random_jumps(), 2);
        assert_eq!(p.sequential_fraction(), 0.5);
    }

    #[test]
    fn empty_plan() {
        let p = SamplePlan::new();
        assert!(p.is_empty());
        assert_eq!(p.batch_len(), 0);
        assert_eq!(p.sequential_fraction(), 0.0);
    }

    #[test]
    fn long_runs_approach_full_sequentiality() {
        let p = SamplePlan { segments: vec![Segment::run(0, 1024)], weights: None };
        assert!(p.sequential_fraction() > 0.999);
    }
}
