//! The N-agent replay buffer: one [`ReplayStorage`] per agent, pushed in
//! lockstep, sampled with a *common indices array* so the joint transition
//! of all agents at the same time step is reassembled (Figure 5 of the
//! paper).

use crate::error::ReplayError;
use crate::indices::SamplePlan;
use crate::storage::ReplayStorage;
use crate::transition::{AgentBatch, MultiBatch, Transition, TransitionLayout, TransitionRef};

/// Per-agent replay buffers kept aligned by pushing one transition per
/// agent per environment step.
///
/// # Examples
///
/// ```
/// use marl_core::multi::MultiAgentReplay;
/// use marl_core::transition::{Transition, TransitionLayout};
///
/// let layouts = vec![TransitionLayout::new(4, 2); 3];
/// let mut replay = MultiAgentReplay::new(&layouts, 100);
/// let ts: Vec<Transition> = (0..3)
///     .map(|_| Transition {
///         obs: vec![0.0; 4],
///         action: vec![1.0, 0.0],
///         reward: 0.0,
///         next_obs: vec![0.0; 4],
///         done: 0.0,
///     })
///     .collect();
/// replay.push_step(&ts)?;
/// assert_eq!(replay.len(), 1);
/// # Ok::<(), marl_core::error::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiAgentReplay {
    buffers: Vec<ReplayStorage>,
    capacity: usize,
}

impl MultiAgentReplay {
    /// Creates aligned buffers, one per agent layout, each of `capacity`
    /// rows.
    ///
    /// # Panics
    ///
    /// Panics if `layouts` is empty or `capacity == 0`.
    pub fn new(layouts: &[TransitionLayout], capacity: usize) -> Self {
        assert!(!layouts.is_empty(), "need at least one agent");
        let buffers = layouts.iter().map(|&l| ReplayStorage::new(l, capacity)).collect();
        MultiAgentReplay { buffers, capacity }
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.buffers.len()
    }

    /// Shared capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of aligned rows stored (identical across agents).
    pub fn len(&self) -> usize {
        self.buffers[0].len()
    }

    /// Whether nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill fraction `len / capacity` in `[0, 1]` (telemetry gauge).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity as f64
        }
    }

    /// The slot the next push writes (for priority bookkeeping).
    pub fn next_slot(&self) -> usize {
        self.buffers[0].next_slot()
    }

    /// Per-agent row layouts.
    pub fn layouts(&self) -> Vec<TransitionLayout> {
        self.buffers.iter().map(|b| *b.layout()).collect()
    }

    /// Read access to one agent's storage.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn buffer(&self, agent: usize) -> &ReplayStorage {
        &self.buffers[agent]
    }

    /// Reconstructs a multi-agent replay from per-agent storages (snapshot
    /// restore).
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::InvalidBatch`] if the storages disagree on
    /// capacity, length or cursor.
    pub fn from_storages(buffers: Vec<ReplayStorage>) -> Result<Self, ReplayError> {
        if buffers.is_empty() {
            return Err(ReplayError::InvalidBatch { reason: "no agent storages".into() });
        }
        let capacity = buffers[0].capacity();
        let len = buffers[0].len();
        let next = buffers[0].next_slot();
        if buffers
            .iter()
            .any(|b| b.capacity() != capacity || b.len() != len || b.next_slot() != next)
        {
            return Err(ReplayError::InvalidBatch {
                reason: "agent storages are not aligned".into(),
            });
        }
        Ok(MultiAgentReplay { buffers, capacity })
    }

    /// Pushes one transition per agent (same time step). Returns the slot
    /// written.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::AgentCountMismatch`] when the number of
    /// transitions differs from the number of agents.
    pub fn push_step(&mut self, transitions: &[Transition]) -> Result<usize, ReplayError> {
        if transitions.len() != self.buffers.len() {
            return Err(ReplayError::AgentCountMismatch {
                expected: self.buffers.len(),
                got: transitions.len(),
            });
        }
        let mut slot = 0;
        for (b, t) in self.buffers.iter_mut().zip(transitions) {
            slot = b.push(t);
        }
        Ok(slot)
    }

    /// Pushes one transition per agent without intermediate `Vec`s: the
    /// closure is called once per agent index and returns a borrowed row.
    /// The agent count is fixed by construction, so no count mismatch can
    /// occur. Returns the slot written.
    pub fn push_step_with<'a, F>(&mut self, mut f: F) -> usize
    where
        F: FnMut(usize) -> TransitionRef<'a>,
    {
        let mut slot = 0;
        for (agent, b) in self.buffers.iter_mut().enumerate() {
            slot = b.push_ref(&f(agent));
        }
        slot
    }

    /// Executes a sample plan against **every** agent's buffer with the
    /// same (common) indices, producing the joint mini-batch the critic
    /// update consumes.
    ///
    /// Contiguous plan segments are gathered with streaming reads;
    /// single-row segments with scattered reads — so the *cost* of a plan
    /// directly reflects its locality, exactly the effect the paper
    /// measures.
    ///
    /// # Errors
    ///
    /// Propagates index-range errors from the underlying storage.
    pub fn sample(&self, plan: &SamplePlan) -> Result<MultiBatch, ReplayError> {
        let mut out = MultiBatch::preallocate(&self.layouts(), plan.batch_len());
        self.sample_into(plan, &mut out)?;
        Ok(out)
    }

    /// [`MultiAgentReplay::sample`] gathering into a caller-owned
    /// [`MultiBatch`], reusing its column storage: once `out` has seen a
    /// batch of this shape, the gather performs zero heap allocations.
    ///
    /// `out` is reshaped on first use (or agent-count change); its contents
    /// are unspecified if an error is returned.
    ///
    /// # Errors
    ///
    /// Propagates index-range errors from the underlying storage.
    pub fn sample_into(&self, plan: &SamplePlan, out: &mut MultiBatch) -> Result<(), ReplayError> {
        let batch = plan.batch_len();
        if out.agents.len() != self.buffers.len() {
            out.agents.clear();
            out.agents
                .extend(self.buffers.iter().map(|b| AgentBatch::with_capacity(*b.layout(), batch)));
        }
        out.set_plan_meta(plan);
        for (b, ab) in self.buffers.iter().zip(&mut out.agents) {
            ab.layout = *b.layout();
            ab.reset(batch);
            for seg in &plan.segments {
                if seg.start + seg.len > b.len() {
                    return Err(ReplayError::IndexOutOfRange {
                        index: seg.start + seg.len - 1,
                        len: b.len(),
                    });
                }
                // Rows within a segment stream sequentially; the segment
                // start is the one unpredictable address — the same access
                // pattern the gather()/gather_run() split models.
                for idx in seg.iter() {
                    ab.push_row(b.row(idx));
                }
            }
        }
        Ok(())
    }

    /// Parallel variant of [`MultiAgentReplay::sample`]: agents' gathers
    /// are independent, so they are fanned out over up to `threads` scoped
    /// worker threads.
    ///
    /// This is an *extension* beyond the paper (which identifies the
    /// sampling phase as CPU-bound): thread-level parallelism composes
    /// with, but does not replace, the locality optimizations — each
    /// worker still executes the same plan segments.
    ///
    /// # Errors
    ///
    /// Propagates index-range errors from the underlying storage.
    pub fn sample_parallel(
        &self,
        plan: &SamplePlan,
        threads: usize,
    ) -> Result<MultiBatch, ReplayError> {
        let threads = threads.clamp(1, self.buffers.len());
        if threads == 1 {
            return self.sample(plan);
        }
        let batch = plan.batch_len();
        let n = self.buffers.len();
        let chunk = n.div_ceil(threads);
        let results: Vec<Result<Vec<AgentBatch>, ReplayError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .buffers
                .chunks(chunk)
                .map(|bufs| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(bufs.len());
                        let mut rows: Vec<f32> = Vec::new();
                        for b in bufs {
                            rows.clear();
                            let w = b.layout().row_width();
                            for seg in &plan.segments {
                                if seg.len == 1 {
                                    b.gather(std::slice::from_ref(&seg.start), &mut rows)?;
                                } else {
                                    b.gather_run(seg.start, seg.len, &mut rows)?;
                                }
                            }
                            let mut ab = AgentBatch::with_capacity(*b.layout(), batch);
                            for r in 0..batch {
                                ab.push_row(&rows[r * w..(r + 1) * w]);
                            }
                            out.push(ab);
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("gather worker panicked")).collect()
        });
        let mut agents = Vec::with_capacity(n);
        for r in results {
            agents.extend(r?);
        }
        Ok(MultiBatch { agents, indices: plan.flatten(), weights: plan.weights.clone() })
    }

    /// Gathers one full mini-batch per plan, fanning the *plans* out over
    /// up to `threads` scoped worker threads.
    ///
    /// This is the gather shape of the parallel update-all-trainers
    /// pipeline: each trainer's plan is independent, so whole-batch
    /// gathers parallelize without any cross-thread coordination. Results
    /// come back in plan order and are bitwise identical to calling
    /// [`MultiAgentReplay::sample`] per plan.
    ///
    /// # Errors
    ///
    /// Propagates index-range errors from the underlying storage.
    pub fn sample_many(
        &self,
        plans: &[SamplePlan],
        threads: usize,
    ) -> Result<Vec<MultiBatch>, ReplayError> {
        let layouts = self.layouts();
        let mut outs: Vec<MultiBatch> =
            plans.iter().map(|p| MultiBatch::preallocate(&layouts, p.batch_len())).collect();
        self.sample_many_into(plans, &mut outs, threads)?;
        Ok(outs)
    }

    /// [`MultiAgentReplay::sample_many`] gathering into caller-owned
    /// batches (one per plan), reusing their storage across calls.
    ///
    /// # Panics
    ///
    /// Panics if `plans.len() != outs.len()`.
    ///
    /// # Errors
    ///
    /// Propagates index-range errors from the underlying storage; the
    /// contents of `outs` are unspecified on error.
    pub fn sample_many_into(
        &self,
        plans: &[SamplePlan],
        outs: &mut [MultiBatch],
        threads: usize,
    ) -> Result<(), ReplayError> {
        assert_eq!(plans.len(), outs.len(), "one output batch per plan");
        let threads = threads.clamp(1, plans.len().max(1));
        if threads == 1 || plans.len() <= 1 {
            for (p, o) in plans.iter().zip(outs.iter_mut()) {
                self.sample_into(p, o)?;
            }
            return Ok(());
        }
        let chunk = plans.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .chunks(chunk)
                .zip(outs.chunks_mut(chunk))
                .map(|(ps, os)| {
                    scope.spawn(move || {
                        for (p, o) in ps.iter().zip(os.iter_mut()) {
                            self.sample_into(p, o)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles.into_iter().try_for_each(|h| h.join().expect("gather worker panicked"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indices::Segment;

    fn transition(layout: &TransitionLayout, v: f32) -> Transition {
        Transition {
            obs: vec![v; layout.obs_dim],
            action: vec![v; layout.act_dim],
            reward: v,
            next_obs: vec![v + 0.5; layout.obs_dim],
            done: 0.0,
        }
    }

    fn filled(agents: usize, rows: usize) -> MultiAgentReplay {
        let layouts = vec![TransitionLayout::new(3, 2); agents];
        let mut r = MultiAgentReplay::new(&layouts, rows * 2);
        for t in 0..rows {
            let ts: Vec<Transition> =
                (0..agents).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            r.push_step(&ts).unwrap();
        }
        r
    }

    #[test]
    fn push_keeps_buffers_aligned() {
        let r = filled(4, 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r.agent_count(), 4);
        for a in 0..4 {
            assert_eq!(r.buffer(a).len(), 10);
            // value encodes time and agent
            assert_eq!(r.buffer(a).transition(3).reward, (30 + a) as f32);
        }
    }

    #[test]
    fn wrong_agent_count_rejected() {
        let layouts = vec![TransitionLayout::new(2, 1); 2];
        let mut r = MultiAgentReplay::new(&layouts, 4);
        let err = r.push_step(&[transition(&layouts[0], 0.0)]).unwrap_err();
        assert!(matches!(err, ReplayError::AgentCountMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn common_indices_align_across_agents() {
        let r = filled(3, 20);
        let plan = SamplePlan::from_indices(&[5, 17, 0]);
        let mb = r.sample(&plan).unwrap();
        assert_eq!(mb.len(), 3);
        for (a, ab) in mb.agents.iter().enumerate() {
            // row 0 of every agent batch comes from time step 5
            assert_eq!(ab.rewards[0], (50 + a) as f32);
            assert_eq!(ab.rewards[1], (170 + a) as f32);
            assert_eq!(ab.rewards[2], a as f32);
        }
    }

    #[test]
    fn run_segments_equal_scattered_result() {
        let r = filled(2, 30);
        let run_plan = SamplePlan { segments: vec![Segment::run(4, 5)], weights: None };
        let flat_plan = SamplePlan::from_indices(&[4, 5, 6, 7, 8]);
        assert_eq!(r.sample(&run_plan).unwrap().agents, r.sample(&flat_plan).unwrap().agents);
    }

    #[test]
    fn batch_columns_have_consistent_shapes() {
        let r = filled(2, 16);
        let plan = SamplePlan::from_indices(&(0..8).collect::<Vec<_>>());
        let mb = r.sample(&plan).unwrap();
        for ab in &mb.agents {
            assert_eq!(ab.obs.len(), 8 * 3);
            assert_eq!(ab.actions.len(), 8 * 2);
            assert_eq!(ab.rewards.len(), 8);
            assert_eq!(ab.next_obs.len(), 8 * 3);
            assert_eq!(ab.dones.len(), 8);
        }
    }

    #[test]
    fn out_of_range_plan_fails() {
        let r = filled(2, 4);
        let plan = SamplePlan::from_indices(&[4]);
        assert!(r.sample(&plan).is_err());
    }

    #[test]
    fn parallel_sample_equals_sequential() {
        let r = filled(8, 64);
        let plan = SamplePlan::from_indices(&[0, 7, 31, 63, 12]);
        let seq = r.sample(&plan).unwrap();
        for threads in [1usize, 2, 3, 8, 100] {
            let par = r.sample_parallel(&plan, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sample_propagates_errors() {
        let r = filled(4, 4);
        let plan = SamplePlan::from_indices(&[10]);
        assert!(r.sample_parallel(&plan, 4).is_err());
    }

    #[test]
    fn weights_pass_through() {
        let r = filled(2, 8);
        let mut plan = SamplePlan::from_indices(&[0, 1]);
        plan.weights = Some(vec![0.5, 1.0]);
        let mb = r.sample(&plan).unwrap();
        assert_eq!(mb.weights, Some(vec![0.5, 1.0]));
    }

    #[test]
    fn sample_many_equals_per_plan_sample() {
        let r = filled(3, 40);
        let plans: Vec<SamplePlan> = vec![
            SamplePlan::from_indices(&[0, 5, 39]),
            SamplePlan { segments: vec![Segment::run(10, 3)], weights: None },
            SamplePlan::from_indices(&[7, 7, 2]),
            SamplePlan::from_indices(&[21]),
            SamplePlan::from_indices(&[3, 14, 15, 9]),
        ];
        let seq: Vec<MultiBatch> = plans.iter().map(|p| r.sample(p).unwrap()).collect();
        for threads in [1usize, 2, 3, 8, 100] {
            let par = r.sample_many(&plans, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn sample_into_reuses_batch_storage() {
        let r = filled(3, 32);
        let mut out = MultiBatch::preallocate(&r.layouts(), 8);
        let plan_a = SamplePlan::from_indices(&(0..8).collect::<Vec<_>>());
        r.sample_into(&plan_a, &mut out).unwrap();
        assert_eq!(out, r.sample(&plan_a).unwrap());
        let ptrs: Vec<_> = out.agents.iter().map(|a| a.obs.as_ptr()).collect();
        // A smaller follow-up batch reuses the same allocations and leaves
        // no stale rows behind.
        let plan_b = SamplePlan::from_indices(&[31, 2, 15]);
        r.sample_into(&plan_b, &mut out).unwrap();
        assert_eq!(out, r.sample(&plan_b).unwrap());
        for (a, &p) in out.agents.iter().zip(&ptrs) {
            assert_eq!(a.obs.as_ptr(), p, "obs storage must be reused");
            assert_eq!(a.rewards.len(), 3);
        }
    }

    #[test]
    fn sample_many_into_matches_sample_many() {
        let r = filled(3, 40);
        let plans: Vec<SamplePlan> = vec![
            SamplePlan::from_indices(&[0, 5, 39]),
            SamplePlan { segments: vec![Segment::run(10, 3)], weights: None },
            SamplePlan::from_indices(&[7, 7, 2]),
        ];
        let expect = r.sample_many(&plans, 1).unwrap();
        let mut outs: Vec<MultiBatch> =
            plans.iter().map(|p| MultiBatch::preallocate(&r.layouts(), p.batch_len())).collect();
        for threads in [1usize, 2, 3] {
            r.sample_many_into(&plans, &mut outs, threads).unwrap();
            assert_eq!(outs, expect, "threads={threads}");
        }
    }

    #[test]
    fn sample_many_handles_empty_and_errors() {
        let r = filled(2, 4);
        assert_eq!(r.sample_many(&[], 4).unwrap(), Vec::<MultiBatch>::new());
        let plans = vec![SamplePlan::from_indices(&[0]), SamplePlan::from_indices(&[10])];
        assert!(r.sample_many(&plans, 2).is_err());
    }
}
