//! CRC-32 (IEEE 802.3) checksums for snapshot/checkpoint integrity.
//!
//! Crash-safe persistence needs to distinguish "file ended early" from
//! "file silently corrupted"; the length fields in the snapshot framing
//! catch the former, this checksum catches the latter (bit rot, torn
//! sector writes, buggy copies). Implemented locally — the offline build
//! has no `crc32fast` — as a table-driven byte-at-a-time loop, which is
//! plenty for checkpoint-sized payloads.

/// The reflected CRC-32 polynomial used by zlib, PNG, and Ethernet.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built lookup table (256 entries, one per byte value).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (zlib-compatible: init `0xFFFF_FFFF`,
/// final xor `0xFFFF_FFFF`).
///
/// # Examples
///
/// ```
/// // The canonical check value for the ASCII string "123456789".
/// assert_eq!(marl_core::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 hasher over the same polynomial as [`crc32`].
///
/// Streams data in any chunking — `Crc32::new().update(a).update(b)`
/// equals `crc32(a ++ b)` — which lets trace digests fold many small
/// fields (indices, run lengths, weight bits) without assembling an
/// intermediate byte buffer.
///
/// # Examples
///
/// ```
/// let mut h = marl_core::crc32::Crc32::new();
/// h.update(b"12345");
/// h.update(b"6789");
/// assert_eq!(h.finish(), marl_core::crc32::crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
        self
    }

    /// The checksum of everything hashed so far. Non-consuming: more
    /// `update` calls may follow.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 100, 1023] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn incremental_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expected = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 999, 1000] {
            let mut h = Crc32::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finish(), expected, "chunk size {chunk}");
        }
        assert_eq!(Crc32::new().finish(), 0, "empty stream matches crc32(b\"\")");
    }

    #[test]
    fn finish_is_non_consuming() {
        let mut h = Crc32::new();
        h.update(b"1234");
        let _mid = h.finish();
        h.update(b"56789");
        assert_eq!(h.finish(), crc32(b"123456789"));
    }

    #[test]
    fn detects_truncation() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let base = crc32(&data);
        assert_ne!(crc32(&data[..4095]), base);
        assert_ne!(crc32(&data[..1]), base);
    }
}
