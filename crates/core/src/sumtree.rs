//! Sum tree for proportional prioritized sampling (Schaul et al., 2015),
//! used by the PER baseline and by the paper's information-prioritized
//! locality-aware sampler to pick reference points.

/// A binary-indexed sum tree over `capacity` priorities.
///
/// Leaves hold priorities; internal nodes hold subtree sums, so prefix-sum
/// sampling and priority updates are both `O(log capacity)`.
///
/// # Examples
///
/// ```
/// use marl_core::sumtree::SumTree;
/// let mut t = SumTree::new(4);
/// t.update(0, 1.0);
/// t.update(1, 3.0);
/// assert_eq!(t.total(), 4.0);
/// assert_eq!(t.find_prefix(0.5), 0);
/// assert_eq!(t.find_prefix(2.0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SumTree {
    capacity: usize,
    tree: Vec<f64>,
}

impl SumTree {
    /// Creates a tree with all priorities zero.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum tree capacity must be positive");
        let size = capacity.next_power_of_two();
        SumTree { capacity, tree: vec![0.0; 2 * size] }
    }

    /// Number of leaves.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Priority of leaf `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn priority(&self, idx: usize) -> f64 {
        assert!(idx < self.capacity, "leaf {idx} out of range");
        let size = self.tree.len() / 2;
        self.tree[size + idx]
    }

    /// Sets the priority of leaf `idx`, updating ancestor sums.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity` or `priority` is negative/non-finite.
    pub fn update(&mut self, idx: usize, priority: f64) {
        assert!(idx < self.capacity, "leaf {idx} out of range");
        assert!(priority.is_finite() && priority >= 0.0, "priority must be finite and >= 0");
        let size = self.tree.len() / 2;
        let mut node = size + idx;
        let delta = priority - self.tree[node];
        self.tree[node] = priority;
        while node > 1 {
            node /= 2;
            self.tree[node] += delta;
        }
    }

    /// Finds the leaf whose cumulative-priority interval contains `prefix`.
    ///
    /// `prefix` is clamped into `[0, total)`. Returns leaf index.
    ///
    /// # Panics
    ///
    /// Panics if the tree has zero total mass.
    pub fn find_prefix(&self, prefix: f64) -> usize {
        assert!(self.total() > 0.0, "cannot sample from an all-zero sum tree");
        let mut prefix = prefix.clamp(0.0, self.total() * (1.0 - 1e-12));
        let size = self.tree.len() / 2;
        let mut node = 1;
        while node < size {
            let left = 2 * node;
            if prefix < self.tree[left] {
                node = left;
            } else {
                prefix -= self.tree[left];
                node = left + 1;
            }
        }
        (node - size).min(self.capacity - 1)
    }

    /// The raw leaf priorities (all `capacity` of them), in slot order —
    /// the serializable state of the tree for checkpointing.
    pub fn leaves(&self) -> Vec<f64> {
        let size = self.tree.len() / 2;
        self.tree[size..size + self.capacity].to_vec()
    }

    /// Replaces every leaf priority at once, rebuilding the internal sums
    /// bottom-up in `O(capacity)` — the restore path for
    /// [`SumTree::leaves`].
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != capacity` or any value is
    /// negative/non-finite (callers restoring untrusted state must
    /// validate first).
    pub fn set_leaves(&mut self, leaves: &[f64]) {
        assert_eq!(leaves.len(), self.capacity, "leaf count mismatch");
        let size = self.tree.len() / 2;
        for (i, &p) in leaves.iter().enumerate() {
            assert!(p.is_finite() && p >= 0.0, "priority must be finite and >= 0");
            self.tree[size + i] = p;
        }
        for node in (1..size).rev() {
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
        }
    }

    /// Minimum non-zero priority among the first `len` leaves, used for the
    /// max-weight normalization in importance sampling. Returns `None` if
    /// all are zero.
    pub fn min_priority(&self, len: usize) -> Option<f64> {
        let size = self.tree.len() / 2;
        self.tree[size..size + len.min(self.capacity)]
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_updates() {
        let mut t = SumTree::new(6); // non power of two
        for i in 0..6 {
            t.update(i, (i + 1) as f64);
        }
        assert_eq!(t.total(), 21.0);
        t.update(5, 0.0);
        assert_eq!(t.total(), 15.0);
        assert_eq!(t.priority(2), 3.0);
    }

    #[test]
    fn prefix_lookup_maps_intervals() {
        let mut t = SumTree::new(4);
        t.update(0, 1.0);
        t.update(1, 2.0);
        t.update(2, 3.0);
        t.update(3, 4.0);
        // intervals: [0,1) [1,3) [3,6) [6,10)
        assert_eq!(t.find_prefix(0.0), 0);
        assert_eq!(t.find_prefix(0.99), 0);
        assert_eq!(t.find_prefix(1.0), 1);
        assert_eq!(t.find_prefix(5.9), 2);
        assert_eq!(t.find_prefix(6.0), 3);
        assert_eq!(t.find_prefix(9.999), 3);
        // clamped
        assert_eq!(t.find_prefix(100.0), 3);
        assert_eq!(t.find_prefix(-5.0), 0);
    }

    #[test]
    fn sampling_frequency_tracks_priority() {
        use rand::{Rng, SeedableRng};
        let mut t = SumTree::new(3);
        t.update(0, 1.0);
        t.update(1, 1.0);
        t.update(2, 8.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            let p: f64 = rng.gen::<f64>() * t.total();
            counts[t.find_prefix(p)] += 1;
        }
        let frac2 = counts[2] as f64 / 10_000.0;
        assert!((frac2 - 0.8).abs() < 0.03, "{counts:?}");
    }

    #[test]
    fn min_priority_ignores_zeros() {
        let mut t = SumTree::new(4);
        assert_eq!(t.min_priority(4), None);
        t.update(1, 5.0);
        t.update(3, 2.0);
        assert_eq!(t.min_priority(4), Some(2.0));
        assert_eq!(t.min_priority(2), Some(5.0)); // leaf 3 outside len
    }

    #[test]
    fn leaves_roundtrip_through_set_leaves() {
        let mut t = SumTree::new(6);
        for i in 0..6 {
            t.update(i, (i * i) as f64);
        }
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 6);
        let mut fresh = SumTree::new(6);
        fresh.set_leaves(&leaves);
        assert_eq!(fresh.total(), t.total());
        for i in 0..6 {
            assert_eq!(fresh.priority(i), t.priority(i));
        }
        assert_eq!(fresh.find_prefix(12.0), t.find_prefix(12.0));
    }

    #[test]
    #[should_panic(expected = "leaf count mismatch")]
    fn set_leaves_rejects_wrong_length() {
        let mut t = SumTree::new(4);
        t.set_leaves(&[1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "all-zero sum tree")]
    fn sampling_empty_tree_panics() {
        let t = SumTree::new(2);
        t.find_prefix(0.0);
    }

    #[test]
    #[should_panic(expected = "priority must be finite")]
    fn negative_priority_rejected() {
        let mut t = SumTree::new(2);
        t.update(0, -1.0);
    }
}
