//! Declarative sampler configuration, so trainers and benches can select a
//! strategy by value.

use crate::sampler::{
    IpLocalityConfig, IpLocalitySampler, LocalityConfig, LocalitySampler, PerConfig, PerSampler,
    Sampler, UniformSampler,
};
use serde::{Deserialize, Serialize};

/// Which mini-batch sampling strategy to use.
///
/// # Examples
///
/// ```
/// use marl_core::config::SamplerConfig;
/// let sampler = SamplerConfig::LocalityN64R16.build(1_000_000);
/// assert_eq!(sampler.name(), "locality-n64");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplerConfig {
    /// Baseline uniform random sampling.
    Uniform,
    /// Cache locality-aware, 16 neighbors × 64 reference points.
    LocalityN16R64,
    /// Cache locality-aware, 64 neighbors × 16 reference points.
    LocalityN64R16,
    /// Cache locality-aware with an arbitrary neighbor count.
    Locality {
        /// Neighbors per reference point.
        neighbors: usize,
    },
    /// Prioritized experience replay (the PER-MADDPG baseline).
    Per,
    /// Information-prioritized locality-aware sampling (the paper's
    /// contribution combining PER with the neighbor predictor).
    IpLocality,
    /// PER wrapped in a transition-reuse window (the AccMER direction the
    /// paper cites): the same prioritized batch is reused for `window`
    /// consecutive plans.
    PerReuse {
        /// Plans sharing one drawn batch.
        window: usize,
    },
}

impl SamplerConfig {
    /// Instantiates the strategy for a buffer of `capacity` rows.
    pub fn build(self, capacity: usize) -> Box<dyn Sampler> {
        match self {
            SamplerConfig::Uniform => Box::new(UniformSampler::new()),
            SamplerConfig::LocalityN16R64 => {
                Box::new(LocalitySampler::new(LocalityConfig::N16_R64))
            }
            SamplerConfig::LocalityN64R16 => {
                Box::new(LocalitySampler::new(LocalityConfig::N64_R16))
            }
            SamplerConfig::Locality { neighbors } => {
                Box::new(LocalitySampler::new(LocalityConfig::new(neighbors)))
            }
            SamplerConfig::Per => Box::new(PerSampler::new(PerConfig::with_capacity(capacity))),
            SamplerConfig::IpLocality => {
                Box::new(IpLocalitySampler::new(IpLocalityConfig::with_capacity(capacity)))
            }
            SamplerConfig::PerReuse { window } => {
                Box::new(crate::sampler::ReuseWindowSampler::new(
                    Box::new(PerSampler::new(PerConfig::with_capacity(capacity))),
                    crate::sampler::ReuseConfig::new(window),
                ))
            }
        }
    }

    /// Whether the strategy maintains priorities (needs TD feedback).
    pub fn is_prioritized(self) -> bool {
        matches!(
            self,
            SamplerConfig::Per | SamplerConfig::IpLocality | SamplerConfig::PerReuse { .. }
        )
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> String {
        match self {
            SamplerConfig::Uniform => "baseline".into(),
            SamplerConfig::LocalityN16R64 => "n16-r64".into(),
            SamplerConfig::LocalityN64R16 => "n64-r16".into(),
            SamplerConfig::Locality { neighbors } => format!("n{neighbors}"),
            SamplerConfig::Per => "per".into(),
            SamplerConfig::IpLocality => "ip".into(),
            SamplerConfig::PerReuse { window } => format!("per-reuse{window}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn build_produces_working_samplers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for cfg in [
            SamplerConfig::Uniform,
            SamplerConfig::LocalityN16R64,
            SamplerConfig::LocalityN64R16,
            SamplerConfig::Locality { neighbors: 8 },
        ] {
            let mut s = cfg.build(10_000);
            let p = s.plan(10_000, 1024, &mut rng).unwrap();
            assert_eq!(p.batch_len(), 1024, "{cfg:?}");
        }
    }

    #[test]
    fn prioritized_samplers_need_pushes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for cfg in [SamplerConfig::Per, SamplerConfig::IpLocality] {
            assert!(cfg.is_prioritized());
            let mut s = cfg.build(4096);
            assert!(s.plan(100, 10, &mut rng).is_err(), "empty tree must error");
            for i in 0..100 {
                s.observe_push(i);
            }
            let p = s.plan(100, 10, &mut rng).unwrap();
            assert_eq!(p.batch_len(), 10);
            assert!(p.weights.is_some());
        }
    }

    #[test]
    fn per_reuse_builds_and_reuses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cfg = SamplerConfig::PerReuse { window: 3 };
        assert!(cfg.is_prioritized());
        let mut s = cfg.build(4096);
        for i in 0..256 {
            s.observe_push(i);
        }
        let a = s.plan(256, 32, &mut rng).unwrap();
        let b = s.plan(256, 32, &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.name(), "per-reuse3");
        assert_eq!(cfg.label(), "per-reuse3");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SamplerConfig::Uniform.label(), "baseline");
        assert_eq!(SamplerConfig::LocalityN16R64.label(), "n16-r64");
        assert_eq!(SamplerConfig::Locality { neighbors: 32 }.label(), "n32");
    }
}
