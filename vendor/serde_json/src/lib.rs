//! Offline vendored stand-in for `serde_json`.
//!
//! The vendored `serde` traits already speak JSON directly, so this crate
//! is a thin facade providing the `to_string`/`from_str` entry points the
//! workspace calls.

use serde::de::Parser;
use serde::ser::Writer;
use serde::{Deserialize, Serialize};

pub use serde::de::Error;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` keeps call sites
/// source-compatible with real serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Writer::new();
    value.serialize(&mut out);
    Ok(out.into_string())
}

/// Parses a value from a JSON string, rejecting trailing content.
///
/// # Errors
///
/// Returns an [`Error`] describing the first malformed token.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = T::deserialize(&mut parser)?;
    parser.expect_end()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = vec![1.5f32, -2.0, 0.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2,0.25]");
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("7 junk").is_err());
    }
}
