//! Offline vendored stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` surface and the
//! `benchmark_group`/`bench_function`/`Bencher::iter` API the workspace
//! benches use, over a plain warmup-then-measure harness: each benchmark
//! is auto-calibrated to a target measurement window and reported as
//! mean/min time per iteration on stdout. No statistics, plotting, or
//! baseline storage.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated iteration count, recording total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    harness: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full =
            if self.name.is_empty() { id.id.clone() } else { format!("{}/{}", self.name, id.id) };

        // Calibrate: grow the per-sample iteration count until one sample
        // costs at least ~1/5 of the measurement window.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed * 5 >= self.harness.measurement_time || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                iters.saturating_mul(8)
            } else {
                let target = self.harness.measurement_time.as_nanos() / 5;
                let scale = (target / b.elapsed.as_nanos().max(1)).clamp(2, 8);
                iters.saturating_mul(scale as u64)
            };
            iters = grow;
        }

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
            let per = b.elapsed / u32::try_from(iters.min(u64::from(u32::MAX))).unwrap_or(1);
            if per < best {
                best = per;
            }
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!(
            "bench {full:<56} mean {:>12}  min {:>12}  ({} samples x {iters} iters)",
            format_ns(mean_ns),
            format_ns(best.as_nanos() as f64),
            self.sample_size,
        );
        self
    }

    /// Ends the group (marker only; output is immediate).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(500), sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the default sample count for groups opened on this harness.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), harness: self, sample_size }
    }

    /// Runs one free-standing benchmark (no group prefix).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let mut group = BenchmarkGroup { name: String::new(), harness: self, sample_size };
        group.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, honoring a substring filter
/// argument like the real harness.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench`; ignore flags, honor `--exact`-less
            // substring filters by name only when given.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.sample_size(2).bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("push", 12).id, "push/12");
        assert_eq!(BenchmarkId::from_parameter("maddpg-3").id, "maddpg-3");
    }
}
