//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Contended performance is std's, which is fine for the
//! coarse-grained telemetry merging this workspace does.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the lock only if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until exclusive access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0i32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison std mutex");
        })
        .join();
        // parking_lot never poisons; the lock must stay usable.
        *m.lock() = 3;
        assert_eq!(*m.lock(), 3);
    }
}
