//! Offline vendored stand-in for the `bytes` crate.
//!
//! The real crate's refcounted zero-copy machinery is unnecessary for the
//! snapshot codec's sequential encode/decode, so [`Bytes`] is a plain
//! owned buffer with a read cursor and [`BytesMut`] a growable `Vec<u8>`.
//! Only the little-endian `Buf`/`BufMut` accessors the workspace calls are
//! provided.

use std::ops::{Deref, DerefMut, RangeTo};

/// Read side: a cursor over bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `N` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `N` bytes remain, matching the real crate.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
///
/// Dereferences to the *unread* tail, like the real crate's `Bytes`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    /// Wraps a static byte string.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.to_vec(), cursor: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// Whether nothing remains unread.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh buffer over the prefix `range` of the unread bytes.
    ///
    /// Only `..end` ranges are needed by the workspace.
    ///
    /// # Panics
    ///
    /// Panics when `range.end` exceeds the unread length.
    pub fn slice(&self, range: RangeTo<usize>) -> Bytes {
        Bytes { data: self.data[self.cursor..self.cursor + range.end].to_vec(), cursor: 0 }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, cursor: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), cursor: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow: {} < {N}", self.remaining());
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.cursor..self.cursor + N]);
        self.cursor += N;
        out
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, cursor: 0 }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { data: data.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_le_values() {
        let mut out = BytesMut::new();
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u16_le(7);
        out.put_u64_le(u64::MAX - 1);
        out.put_f32_le(1.5);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 4 + 2 + 8 + 4);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u16_le(), 7);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn slice_and_index_match_unread_tail() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let _ = b.get_u16_le();
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(&b.slice(..2)[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_is_mutably_indexable() {
        let mut b = BytesMut::from(&[9u8, 9, 9][..]);
        b[1] = 0;
        assert_eq!(&b[..], &[9, 0, 9]);
    }
}
