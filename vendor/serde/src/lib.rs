//! Offline vendored stand-in for `serde`.
//!
//! The real serde's visitor-based data model is far more general than this
//! workspace needs; with no registry access, this crate provides the same
//! surface syntax — `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `serde::Serialize` bounds — over a direct-to-JSON implementation. The
//! companion `serde_json` crate supplies `to_string`/`from_str` on top of
//! the [`Serialize`]/[`Deserialize`] traits defined here.
//!
//! Supported shapes (everything this workspace derives): structs with
//! named fields, unit structs, enums with unit/tuple/struct variants, and
//! the primitive/collection impls below. Non-finite floats serialize as
//! `null` and deserialize back to `NaN`, keeping round-trips total.

pub mod de;
pub mod ser;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use de::{Error, Parser};
use ser::Writer;

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize(&self, out: &mut Writer);
}

/// Types that can parse themselves back from JSON.
pub trait Deserialize: Sized {
    /// Parses one value from the cursor.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`Error`] on malformed or mistyped input.
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Writer) {
        (**self).serialize(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, out: &mut Writer) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        T::deserialize(parser).map(Box::new)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Writer) {
                out.raw_display(self);
            }
        }
        impl Deserialize for $t {
            fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
                let token = parser.number_token()?;
                token.parse().map_err(|_| Error::msg(format!(
                    "invalid {} literal `{token}`", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Writer) {
                if self.is_finite() {
                    out.raw_display(self);
                } else {
                    // serde_json refuses non-finite floats; encoding them
                    // as null keeps checkpoint round-trips total.
                    out.raw("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
                if parser.try_null()? {
                    return Ok(<$t>::NAN);
                }
                let token = parser.number_token()?;
                token.parse().map_err(|_| Error::msg(format!(
                    "invalid {} literal `{token}`", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, out: &mut Writer) {
        out.raw(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        parser.parse_bool()
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Writer) {
        out.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Writer) {
        out.string(self);
    }
}

impl Deserialize for String {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        parser.parse_string()
    }
}

impl Deserialize for &'static str {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        // Static-string fields (platform names) only round-trip in tests;
        // leaking the handful of parsed strings is the price of skipping
        // real serde's borrowed-lifetime machinery.
        Ok(Box::leak(parser.parse_string()?.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Writer) {
        match self {
            Some(v) => v.serialize(out),
            None => out.raw("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        if parser.try_null()? {
            Ok(None)
        } else {
            T::deserialize(parser).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Writer) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Writer) {
        out.raw("[");
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.raw(",");
            }
            v.serialize(out);
        }
        out.raw("]");
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        parser.expect_char('[')?;
        let mut items = Vec::new();
        if parser.try_char(']')? {
            return Ok(items);
        }
        loop {
            items.push(T::deserialize(parser)?);
            if parser.try_char(',')? {
                continue;
            }
            parser.expect_char(']')?;
            return Ok(items);
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut Writer) {
        self.as_slice().serialize(out);
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(parser)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected array of length {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self, out: &mut Writer) {
        // Matches real serde's encoding: {"secs":u64,"nanos":u32}.
        out.raw("{");
        out.key("secs");
        self.as_secs().serialize(out);
        out.raw(",");
        out.key("nanos");
        self.subsec_nanos().serialize(out);
        out.raw("}");
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
        parser.expect_char('{')?;
        let mut secs = None;
        let mut nanos = None;
        loop {
            let key = parser.parse_string()?;
            parser.expect_char(':')?;
            match key.as_str() {
                "secs" => secs = Some(u64::deserialize(parser)?),
                "nanos" => nanos = Some(u32::deserialize(parser)?),
                other => return Err(Error::msg(format!("unknown Duration field `{other}`"))),
            }
            if parser.try_char(',')? {
                continue;
            }
            parser.expect_char('}')?;
            break;
        }
        match (secs, nanos) {
            (Some(s), Some(n)) => Ok(std::time::Duration::new(s, n)),
            _ => Err(Error::msg("Duration requires `secs` and `nanos`")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Writer) {
                out.raw("[");
                let mut first = true;
                $(
                    if !first { out.raw(","); }
                    first = false;
                    self.$idx.serialize(out);
                )+
                let _ = first;
                out.raw("]");
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(parser: &mut Parser<'_>) -> Result<Self, Error> {
                parser.expect_char('[')?;
                let mut first = true;
                let value = ($(
                    {
                        if !first { parser.expect_char(',')?; }
                        first = false;
                        let v: $name = Deserialize::deserialize(parser)?;
                        v
                    },
                )+);
                let _ = first;
                parser.expect_char(']')?;
                Ok(value)
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = Writer::new();
        v.serialize(&mut w);
        w.into_string()
    }

    fn from_json<T: Deserialize>(s: &str) -> T {
        let mut p = Parser::new(s);
        let v = T::deserialize(&mut p).expect("parse");
        p.expect_end().expect("trailing");
        v
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(from_json::<u64>("42"), 42);
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(from_json::<i32>("-7"), -7);
        assert_eq!(to_json(&true), "true");
        assert!(!from_json::<bool>("false"));
        assert_eq!(to_json(&1.5f32), "1.5");
        assert_eq!(from_json::<f32>("1.5"), 1.5);
        let x: f64 = from_json(&to_json(&0.1f64));
        assert_eq!(x, 0.1);
    }

    #[test]
    fn nan_round_trips_as_null() {
        assert_eq!(to_json(&f32::NAN), "null");
        assert!(from_json::<f32>("null").is_nan());
        assert_eq!(to_json(&f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_json(&"a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(from_json::<String>(r#""a\"b\\c\nd""#), "a\"b\\c\nd");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_json(&v), "[1,2,3]");
        assert_eq!(from_json::<Vec<u32>>("[1,2,3]"), v);
        assert_eq!(from_json::<Vec<u32>>("[]"), Vec::<u32>::new());
        let o: Option<u8> = None;
        assert_eq!(to_json(&o), "null");
        assert_eq!(from_json::<Option<u8>>("5"), Some(5));
        let t = (1u8, 2.5f32);
        assert_eq!(to_json(&t), "[1,2.5]");
        assert_eq!(from_json::<(u8, f32)>("[1,2.5]"), t);
        let a = [1u128, 2, 3];
        assert_eq!(to_json(&a), "[1,2,3]");
        assert_eq!(from_json::<[u128; 3]>("[1,2,3]"), a);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(from_json::<Vec<u32>>(" [ 1 , 2 ] "), vec![1, 2]);
    }
}
