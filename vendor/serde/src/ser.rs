//! JSON output writer used by [`crate::Serialize`] implementations.

use std::fmt::Display;

/// An append-only JSON text buffer.
///
/// Derived implementations call [`Writer::key`]/[`Writer::raw`] to manage
/// object punctuation themselves; all string content goes through
/// [`Writer::string`] for escaping.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the accumulated JSON.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Appends raw JSON punctuation or literals.
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Appends a value through its `Display` impl (numbers).
    pub fn raw_display<T: Display>(&mut self, v: &T) {
        use std::fmt::Write;
        let _ = write!(self.out, "{v}");
    }

    /// Appends `"key":`.
    pub fn key(&mut self, key: &str) {
        self.string(key);
        self.out.push(':');
    }

    /// Appends an escaped JSON string literal.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write;
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}
