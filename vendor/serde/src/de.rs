//! JSON cursor used by [`crate::Deserialize`] implementations.

use std::fmt;

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A byte cursor over JSON text with the token-level helpers derived
/// implementations need.
#[derive(Debug)]
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Starts parsing at the beginning of `input`.
    pub fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte without consuming it.
    pub fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    /// Consumes `c` or errors.
    ///
    /// # Errors
    ///
    /// Returns an error if the next non-whitespace byte differs from `c`.
    pub fn expect_char(&mut self, c: char) -> Result<(), Error> {
        let got = self.peek()?;
        if got == c as u8 {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{c}` at byte {}, found `{}`", self.pos, got as char)))
        }
    }

    /// Consumes `c` if it is next; reports whether it did.
    ///
    /// # Errors
    ///
    /// Returns an error only at end of input.
    pub fn try_char(&mut self, c: char) -> Result<bool, Error> {
        if self.peek()? == c as u8 {
            self.pos += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Consumes a `null` literal if it is next; reports whether it did.
    ///
    /// # Errors
    ///
    /// Returns an error at end of input.
    pub fn try_null(&mut self) -> Result<bool, Error> {
        if self.peek()? == b'n' {
            self.keyword("null")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    /// Parses `true` or `false`.
    ///
    /// # Errors
    ///
    /// Returns an error when neither literal is next.
    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        match self.peek()? {
            b't' => self.keyword("true").map(|()| true),
            b'f' => self.keyword("false").map(|()| false),
            other => Err(Error::msg(format!("expected boolean, found `{}`", other as char))),
        }
    }

    /// Returns the maximal number token (sign, digits, point, exponent) as
    /// a string slice, consuming it.
    ///
    /// # Errors
    ///
    /// Returns an error when no number starts here.
    pub fn number_token(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::msg(format!("expected number at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("non-UTF-8 number token"))
    }

    /// Parses a JSON string literal with escapes.
    ///
    /// # Errors
    ///
    /// Returns an error on a malformed literal.
    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let len = utf8_len(b);
                    let bytes = self
                        .bytes
                        .get(self.pos - 1..self.pos - 1 + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len - 1;
                }
            }
        }
    }

    /// Asserts that only whitespace remains.
    ///
    /// # Errors
    ///
    /// Returns an error when trailing content exists.
    pub fn expect_end(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(Error::msg(format!("trailing characters at byte {}", self.pos)))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
