//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! With no registry access there is no `syn`/`quote`; this macro parses the
//! item's token stream directly. It supports exactly the shapes the
//! workspace derives: non-generic structs with named fields (including
//! `#[serde(skip)]` and `#[serde(default)]`), unit/tuple structs, and
//! non-generic enums with unit,
//! tuple, and struct variants, using serde's externally-tagged JSON
//! encoding (`"Variant"`, `{"Variant":[..]}`, `{"Variant":{..}}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: a missing key deserializes via `Default`
    /// instead of erroring (old-snapshot compatibility).
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consumes leading attributes, reporting which of `#[serde(skip)]`
    /// and `#[serde(default)]` were present as `(skip, default)`.
    fn eat_attrs(&mut self) -> (bool, bool) {
        let mut skip = false;
        let mut default = false;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    skip |= serde_attr_has(&g.stream(), "skip");
                    default |= serde_attr_has(&g.stream(), "default");
                }
                other => panic!("expected `[...]` after `#`, found {other:?}"),
            }
        }
        (skip, default)
    }

    /// Consumes `pub`, `pub(...)`, or nothing.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    /// Skips a type (or expression) until a top-level comma, tracking
    /// `<...>` nesting; the comma itself is not consumed.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    self.pos += 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                    self.pos += 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => self.pos += 1,
            }
        }
    }
}

fn serde_attr_has(stream: &TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == word)),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.eat_attrs();
    cur.eat_visibility();
    if cur.eat_ident("struct") {
        let name = cur.expect_ident("struct name");
        reject_generics(&cur, &name);
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::Struct { name, fields: Fields::Named(fields) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                Item::Struct { name, fields: Fields::Tuple(count) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item::Struct { name, fields: Fields::Unit }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        }
    } else if cur.eat_ident("enum") {
        let name = cur.expect_ident("enum name");
        reject_generics(&cur, &name);
        match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        }
    } else {
        panic!("serde derive supports only structs and enums");
    }
}

fn reject_generics(cur: &Cursor, name: &str) {
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generics (type `{name}`)");
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let (skip, default) = cur.eat_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.eat_visibility();
        let name = cur.expect_ident("field name");
        assert!(cur.eat_punct(':'), "expected `:` after field `{name}`");
        cur.skip_until_top_level_comma();
        cur.eat_punct(',');
        fields.push(Field { name, skip, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    loop {
        cur.eat_attrs();
        cur.eat_visibility();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_until_top_level_comma();
        count += 1;
        if !cur.eat_punct(',') {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.eat_attrs();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cur.pos += 1;
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant if present.
        if cur.eat_punct('=') {
            cur.skip_until_top_level_comma();
        }
        cur.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => ser_named_fields(fields, "self.", ""),
                Fields::Tuple(count) => ser_tuple_fields(*count, "self.", ""),
                Fields::Unit => "__out.raw(\"null\");".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self, __out: &mut ::serde::ser::Writer) {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!("{name}::{vn} => {{ __out.string(\"{vn}\"); }}\n"));
                    }
                    Fields::Tuple(count) => {
                        let binds: Vec<String> = (0..*count).map(|i| format!("__v{i}")).collect();
                        let body = ser_tuple_binds(&binds);
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ __out.raw(\"{{\"); __out.key(\"{vn}\"); {body} __out.raw(\"}}\"); }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let body = ser_named_fields(fields, "", "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ __out.raw(\"{{\"); __out.key(\"{vn}\"); {body} __out.raw(\"}}\"); }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self, __out: &mut ::serde::ser::Writer) {{\n\
                 match self {{ {arms} }}\n\
                 }}\n}}"
            )
        }
    }
}

/// Serializes named fields as a JSON object. `prefix` is `self.` for
/// structs and empty for destructured enum variants (where `name` binds a
/// reference already).
fn ser_named_fields(fields: &[Field], prefix: &str, _suffix: &str) -> String {
    let mut out = String::from("__out.raw(\"{\");\n");
    let mut first = true;
    for f in fields {
        if f.skip {
            continue;
        }
        if !first {
            out.push_str("__out.raw(\",\");\n");
        }
        first = false;
        let access = format!("{}{}", prefix, f.name);
        out.push_str(&format!(
            "__out.key(\"{}\"); ::serde::Serialize::serialize(&{access}, __out);\n",
            f.name
        ));
    }
    out.push_str("__out.raw(\"}\");");
    out
}

fn ser_tuple_fields(count: usize, prefix: &str, _suffix: &str) -> String {
    let binds: Vec<String> = (0..count).map(|i| format!("{prefix}{i}")).collect();
    ser_tuple_binds(&binds)
}

fn ser_tuple_binds(binds: &[String]) -> String {
    if binds.len() == 1 {
        // Newtype convention: serialize the inner value directly.
        return format!("::serde::Serialize::serialize(&{}, __out);", binds[0]);
    }
    let mut out = String::from("__out.raw(\"[\");\n");
    for (i, b) in binds.iter().enumerate() {
        if i > 0 {
            out.push_str("__out.raw(\",\");\n");
        }
        out.push_str(&format!("::serde::Serialize::serialize(&{b}, __out);\n"));
    }
    out.push_str("__out.raw(\"]\");");
    out
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => de_named_fields(fields, name),
                Fields::Tuple(count) => de_tuple_fields(*count, name),
                Fields::Unit => format!("__p.try_null()?; ::core::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__p: &mut ::serde::de::Parser<'_>) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(count) => {
                        let body = de_tuple_fields(*count, &format!("{name}::{vn}"));
                        data_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    Fields::Named(fields) => {
                        let body = de_named_fields(fields, &format!("{name}::{vn}"));
                        data_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__p: &mut ::serde::de::Parser<'_>) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                 if __p.peek()? == b'\"' {{\n\
                   let __tag = __p.parse_string()?;\n\
                   match __tag.as_str() {{\n{unit_arms}\
                     __other => ::core::result::Result::Err(::serde::de::Error::msg(\
                        format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                   }}\n\
                 }} else {{\n\
                   __p.expect_char('{{')?;\n\
                   let __tag = __p.parse_string()?;\n\
                   __p.expect_char(':')?;\n\
                   let __value = match __tag.as_str() {{\n{data_arms}\
                     __other => ::core::result::Result::Err(::serde::de::Error::msg(\
                        format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                   }}?;\n\
                   __p.expect_char('}}')?;\n\
                   ::core::result::Result::Ok(__value)\n\
                 }}\n}}\n}}"
            )
        }
    }
}

/// Parses a JSON object into named fields in any key order, then builds
/// `ctor { ... }`. Skipped fields take their `Default`.
fn de_named_fields(fields: &[Field], ctor: &str) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    let mut any_active = false;
    for f in fields {
        let fname = &f.name;
        if f.skip {
            build.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
            continue;
        }
        any_active = true;
        decls.push_str(&format!("let mut __f_{fname} = ::core::option::Option::None;\n"));
        arms.push_str(&format!(
            "\"{fname}\" => {{ __f_{fname} = ::core::option::Option::Some(::serde::Deserialize::deserialize(__p)?); }}\n"
        ));
        let on_missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(\
                 ::serde::de::Error::msg(\"missing field `{fname}`\"))"
            )
        };
        build.push_str(&format!(
            "{fname}: match __f_{fname} {{\n\
               ::core::option::Option::Some(__v) => __v,\n\
               ::core::option::Option::None => {on_missing},\n\
             }},\n"
        ));
    }
    let loop_body = if any_active {
        format!(
            "if !__p.try_char('}}')? {{\n\
               loop {{\n\
                 let __key = __p.parse_string()?;\n\
                 __p.expect_char(':')?;\n\
                 match __key.as_str() {{\n{arms}\
                   __other => return ::core::result::Result::Err(::serde::de::Error::msg(\
                      format!(\"unknown field `{{__other}}`\"))),\n\
                 }}\n\
                 if __p.try_char(',')? {{ continue; }}\n\
                 __p.expect_char('}}')?;\n\
                 break;\n\
               }}\n\
             }}"
        )
    } else {
        "__p.expect_char('}')?;".to_owned()
    };
    format!(
        "__p.expect_char('{{')?;\n\
         {decls}\
         {loop_body}\n\
         ::core::result::Result::Ok({ctor} {{\n{build}}})"
    )
}

fn de_tuple_fields(count: usize, ctor: &str) -> String {
    if count == 1 {
        return format!(
            "::core::result::Result::Ok({ctor}(::serde::Deserialize::deserialize(__p)?))"
        );
    }
    let mut decls = String::new();
    let mut args = Vec::new();
    for i in 0..count {
        if i == 0 {
            decls.push_str(&format!("let __v{i} = ::serde::Deserialize::deserialize(__p)?;\n"));
        } else {
            decls.push_str(&format!(
                "__p.expect_char(',')?;\nlet __v{i} = ::serde::Deserialize::deserialize(__p)?;\n"
            ));
        }
        args.push(format!("__v{i}"));
    }
    format!(
        "__p.expect_char('[')?;\n\
         {decls}\
         __p.expect_char(']')?;\n\
         ::core::result::Result::Ok({ctor}({}))",
        args.join(", ")
    )
}
