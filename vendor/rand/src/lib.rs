//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements exactly the API subset the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded
//! via SplitMix64 — deterministic, high-quality, and fully reproducible
//! from a `u64` seed. Streams differ numerically from upstream `rand`'s
//! ChaCha12-based `StdRng`, which is fine: nothing in the workspace pins
//! golden values of the upstream stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// the type's natural range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator recommended by the xoshiro
/// authors.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sampling from a type's standard distribution.
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(isize => usize, i64 => u64, i32 => u32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding may land exactly on `end`; clamp back
                // into the half-open interval.
                if v >= self.end { self.start.max(prev_down(self.end)) } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The largest float strictly below `x` (for clamping half-open float
/// ranges).
fn prev_down<T: FloatBits>(x: T) -> T {
    T::prev_down(x)
}

trait FloatBits: Copy {
    fn prev_down(self) -> Self;
}

impl FloatBits for f32 {
    fn prev_down(self) -> Self {
        f32::from_bits(self.to_bits() - 1)
    }
}

impl FloatBits for f64 {
    fn prev_down(self) -> Self {
        f64::from_bits(self.to_bits() - 1)
    }
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this lets long-running
        /// experiments persist and bitwise-restore their random streams —
        /// the upstream `rand` crate offers the same capability through
        /// serde on its rng types.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state (a xoshiro fixed point, never produced by a
        /// live generator) is nudged exactly as in `from_seed`.
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0; 4] {
                let mut seed = [0u8; 32];
                seed.fill(0);
                return <StdRng as SeedableRng>::from_seed(seed);
            }
            StdRng { s: state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let a = rng.gen_range(0usize..5);
            assert!(a < 5);
            let b = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&b));
            let c = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&c));
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen_range(0usize..10) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn unsized_rng_works_via_autoref() {
        fn takes_unsized<R: super::Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(takes_unsized(&mut rng).is_finite());
    }
}
