//! Offline vendored stand-in for `proptest`.
//!
//! Keeps the surface syntax of the real crate — the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`, range and `any::<T>()` strategies,
//! `collection::vec`, tuple strategies — over a deterministic SplitMix64
//! case generator seeded from the test name. There is no shrinking: a
//! failing case reports its generated inputs via the assertion message
//! and panics directly.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner draws new ones.
        Reject(String),
        /// An assertion failed; the runner panics with this message.
        Fail(String),
    }

    /// Deterministic per-test RNG (SplitMix64 seeded by FNV-1a of the
    /// test name) so failures reproduce across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)` via Lemire-style widening multiply.
        ///
        /// # Panics
        ///
        /// Panics when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// concrete value directly and nothing shrinks.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: ::core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: ::core::marker::PhantomData }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The canonical boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding `Vec`s with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: ::core::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: ::core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Mirror of the real crate's `prelude::prop` re-export module.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies for `cases` accepted runs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Rendered before the case body, which takes the
                    // values by move.
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(what)) => {
                            rejected += 1;
                            assert!(
                                rejected < 4096,
                                "property `{}` rejected too many cases (last: {what})",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "property `{}` failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                message,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case when both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Rejects the current case (new inputs are drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f32..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..-1).generate(&mut rng);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic("vec");
        let strat = crate::collection::vec((0usize..10, 1usize..3), 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 10 && (1..3).contains(&b)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 1usize..50, flip in prop::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(usize::from(flip), flip as usize);
            prop_assert_ne!(x, 0);
        }
    }
}
