//! Renders one predator-prey episode as an SVG film-strip — a quick visual
//! sanity check of the environment port.
//!
//! Run with:
//! ```text
//! cargo run --release --example render_episode
//! ```
//! Writes `episode.svg` in the current directory.

use marl_repro::env::render::{render_strip, RenderOptions};
use marl_repro::env::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut env = marl_repro::env::predator_prey(3, 25, 7);
    env.reset();
    let mut frames: Vec<World> = vec![env.world().clone()];
    // Simple chase: each predator moves toward the prey's quadrant.
    for _ in 0..24 {
        let prey = env.world().agents[3].state.position;
        let actions: Vec<usize> = (0..3)
            .map(|i| {
                let me = env.world().agents[i].state.position;
                marl_repro::env::DiscreteAction::closest_to(prey - me).index()
            })
            .collect();
        let step = env.step(&actions)?;
        frames.push(env.world().clone());
        if step.done {
            break;
        }
    }
    // Render every 4th frame.
    let picks: Vec<&World> = frames.iter().step_by(4).collect();
    let svg = render_strip(&picks, &RenderOptions { size_px: 256, ..Default::default() });
    std::fs::write("episode.svg", &svg)?;
    println!("wrote episode.svg ({} frames, {} bytes)", picks.len(), svg.len());
    Ok(())
}
