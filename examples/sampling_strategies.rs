//! Compares the paper's mini-batch sampling strategies head-to-head on a
//! synthetic multi-agent replay buffer: baseline uniform, the two
//! cache locality-aware operating points, PER, information-prioritized
//! locality-aware sampling, and the reorganized interleaved layout.
//!
//! Run with:
//! ```text
//! cargo run --release --example sampling_strategies
//! ```

use marl_repro::core::config::SamplerConfig;
use marl_repro::core::layout::InterleavedStore;
use marl_repro::core::multi::MultiAgentReplay;
use marl_repro::core::transition::{Transition, TransitionLayout};
use marl_repro::perf::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const AGENTS: usize = 12;
const OBS_DIM: usize = 72; // cooperative navigation at N = 12
const ROWS: usize = 60_000;
const BATCH: usize = 1024;
const ITERS: usize = 30;

fn filled_replay() -> MultiAgentReplay {
    let layouts = vec![TransitionLayout::new(OBS_DIM, 5); AGENTS];
    let mut replay = MultiAgentReplay::new(&layouts, ROWS);
    let proto = Transition {
        obs: vec![0.1; OBS_DIM],
        action: vec![0.0, 1.0, 0.0, 0.0, 0.0],
        reward: 0.0,
        next_obs: vec![0.2; OBS_DIM],
        done: 0.0,
    };
    let step: Vec<Transition> = vec![proto; AGENTS];
    for _ in 0..ROWS {
        replay.push_step(&step).expect("push");
    }
    replay
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "sampling {ITERS} update iterations of {AGENTS} trainers x batch {BATCH} over {ROWS}-row buffers\n"
    );
    let replay = filled_replay();
    let mut table = Table::new(&["strategy", "time (ms)", "jumps/plan", "vs baseline"]);
    let mut baseline_ms = None;

    for cfg in [
        SamplerConfig::Uniform,
        SamplerConfig::LocalityN16R64,
        SamplerConfig::LocalityN64R16,
        SamplerConfig::Per,
        SamplerConfig::IpLocality,
    ] {
        let mut sampler = cfg.build(ROWS);
        if cfg.is_prioritized() {
            for slot in 0..ROWS {
                sampler.observe_push(slot);
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut jumps = 0usize;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            // One full update-all-trainers iteration: every trainer draws
            // a plan and gathers from every agent's buffer.
            for _ in 0..AGENTS {
                let plan = sampler.plan(replay.len(), BATCH, &mut rng)?;
                jumps += plan.random_jumps();
                std::hint::black_box(replay.sample(&plan)?);
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let base = *baseline_ms.get_or_insert(ms);
        table.row_owned(vec![
            sampler.name(),
            format!("{ms:.1}"),
            format!("{}", jumps / (ITERS * AGENTS)),
            format!("{:+.1}%", (1.0 - ms / base) * 100.0),
        ]);
    }

    // Layout reorganization: interleaved store, O(m) gathers.
    {
        let t_reorg = Instant::now();
        let (store, report) = InterleavedStore::reorganize_from(&replay);
        let reorg_ms = t_reorg.elapsed().as_secs_f64() * 1e3;
        let mut sampler = SamplerConfig::Uniform.build(ROWS);
        let mut rng = StdRng::seed_from_u64(0);
        let t0 = Instant::now();
        for _ in 0..ITERS {
            for _ in 0..AGENTS {
                let plan = sampler.plan(store.len(), BATCH, &mut rng)?;
                std::hint::black_box(store.sample(&plan)?);
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let base = baseline_ms.unwrap_or(ms);
        table.row_owned(vec![
            "interleaved-layout".into(),
            format!("{ms:.1}"),
            format!("{BATCH}"),
            format!("{:+.1}%", (1.0 - ms / base) * 100.0),
        ]);
        println!(
            "(one-time layout reorganization: {:.1} ms for {} rows x {} agents)",
            reorg_ms, report.rows, report.agents
        );
    }

    println!("\n{table}");
    Ok(())
}
