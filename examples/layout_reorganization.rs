//! End-to-end training with the transition data layout reorganization
//! (Section IV-B2): the trainer keeps a single interleaved key-value store
//! instead of N per-agent buffers, turning the joint mini-batch gather
//! into a single O(m) pass.
//!
//! Run with:
//! ```text
//! cargo run --release --example layout_reorganization
//! ```

use marl_repro::algo::{Algorithm, LayoutMode, Task, TrainConfig, Trainer};
use marl_repro::perf::phase::Phase;
use marl_repro::perf::report::Table;

fn run(layout: LayoutMode, agents: usize) -> Result<(f64, f64, f32), Box<dyn std::error::Error>> {
    let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, agents)
        .with_layout(layout)
        .with_episodes(60)
        .with_batch_size(256)
        .with_buffer_capacity(30_000)
        .with_seed(5);
    let mut trainer = Trainer::new(config)?;
    trainer.prefill(24_000)?; // realistic buffer occupancy before measuring
    let report = trainer.train()?;
    Ok((
        report.wall_time.as_secs_f64(),
        report.profile.get(Phase::MiniBatchSampling).as_secs_f64(),
        report.curve.final_score(15),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MADDPG predator-prey with per-agent vs interleaved transition layout\n");
    let mut table = Table::new(&["agents", "layout", "total (s)", "sampling (s)", "final score"]);
    for agents in [3usize, 6] {
        for (label, layout) in
            [("per-agent", LayoutMode::PerAgent), ("interleaved", LayoutMode::Interleaved)]
        {
            let (total, sampling, score) = run(layout, agents)?;
            table.row_owned(vec![
                agents.to_string(),
                label.into(),
                format!("{total:.2}"),
                format!("{sampling:.3}"),
                format!("{score:.1}"),
            ]);
        }
    }
    println!("{table}");
    println!("With identical seeds the two layouts train identically; only the gather cost");
    println!("differs (the interleaved advantage grows with the agent count — Fig. 14).");
    Ok(())
}
