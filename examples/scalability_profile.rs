//! Scalability mini-study: how the update-all-trainers share of training
//! time grows with the number of agents (the trend of the paper's
//! Figures 2 and 6), on scaled-down predator-prey runs.
//!
//! Run with:
//! ```text
//! cargo run --release --example scalability_profile
//! ```

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::perf::phase::Phase;
use marl_repro::perf::report::{percent, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MADDPG predator-prey scalability (scaled-down: 40 episodes, batch 256)\n");
    let mut table = Table::new(&[
        "agents",
        "total (s)",
        "action-selection",
        "update-all-trainers",
        "sampling share of update",
    ]);
    for agents in [3usize, 6, 12] {
        let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, agents)
            .with_episodes(40)
            .with_batch_size(256)
            .with_buffer_capacity(20_000)
            .with_seed(1);
        let mut trainer = Trainer::new(config)?;
        let report = trainer.train()?;
        let p = &report.profile;
        let update_frac = p.update_all_trainers().as_secs_f64() / p.total().as_secs_f64();
        table.row_owned(vec![
            agents.to_string(),
            format!("{:.2}", report.wall_time.as_secs_f64()),
            percent(p.fraction(Phase::ActionSelection)),
            percent(update_frac),
            percent(p.fraction_of_update(Phase::MiniBatchSampling)),
        ]);
    }
    println!("{table}");
    println!("expected trend (paper Fig. 2/3): the update-all-trainers share grows with N");
    println!("and mini-batch sampling dominates inside it.");
    Ok(())
}
