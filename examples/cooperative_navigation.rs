//! Cooperative navigation with and without cache locality-aware sampling:
//! trains two identical MADDPG configurations that differ only in the
//! mini-batch sampler and compares end-to-end time and learning quality —
//! a miniature of the paper's Figures 9 and 10.
//!
//! Run with:
//! ```text
//! cargo run --release --example cooperative_navigation
//! ```

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::perf::phase::Phase;
use marl_repro::perf::report::Table;

fn run(sampler: SamplerConfig) -> Result<(String, f64, f64, f32), Box<dyn std::error::Error>> {
    let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::CooperativeNavigation, 6)
        .with_sampler(sampler)
        .with_episodes(150)
        .with_batch_size(256)
        .with_buffer_capacity(30_000)
        .with_seed(3);
    let mut trainer = Trainer::new(config)?;
    let report = trainer.train()?;
    let sampling_s = report.profile.get(Phase::MiniBatchSampling).as_secs_f64();
    Ok((sampler.label(), report.wall_time.as_secs_f64(), sampling_s, report.curve.final_score(30)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cooperative navigation, 6 agents, MADDPG, 150 episodes per config\n");
    let mut table = Table::new(&["sampler", "total (s)", "sampling (s)", "final score"]);
    let mut baseline_total = None;
    for sampler in
        [SamplerConfig::Uniform, SamplerConfig::LocalityN16R64, SamplerConfig::LocalityN64R16]
    {
        let (label, total, sampling, score) = run(sampler)?;
        let base = *baseline_total.get_or_insert(total);
        table.row_owned(vec![
            label,
            format!("{total:.2}"),
            format!("{sampling:.2}"),
            format!("{score:.1}"),
        ]);
        if total != base {
            println!(
                "{sampler:?}: end-to-end change vs baseline: {:+.1}%",
                (1.0 - total / base) * 100.0
            );
        }
    }
    println!("\n{table}");
    println!("scores are mean episode rewards over the last 30 episodes (higher is better;");
    println!("cooperative-navigation rewards are negative distances, so closer to 0 is better).");
    Ok(())
}
