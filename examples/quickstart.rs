//! Quickstart: train MADDPG on a 3-predator predator-prey task and print
//! the paper-style phase breakdown.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::perf::phase::Phase;
use marl_repro::perf::report::{percent, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
        .with_episodes(120)
        .with_batch_size(256)
        .with_buffer_capacity(20_000);
    println!(
        "training {} on {} with {} agents, {} episodes...",
        config.algorithm.label(),
        config.task.label(),
        config.agents,
        config.episodes
    );

    let mut trainer = Trainer::new(config)?;
    let report = trainer.train()?;

    println!("\nwall time: {:?}", report.wall_time);
    println!("environment steps: {}", report.env_steps);
    println!("update-all-trainers iterations: {}", report.update_iterations);

    let mut table = Table::new(&["phase", "share of total", "share of update-all-trainers"]);
    for phase in Phase::ALL {
        let of_update = if phase.in_update_all_trainers() {
            percent(report.profile.fraction_of_update(phase))
        } else {
            "-".to_owned()
        };
        table.row(&[phase.label(), &percent(report.profile.fraction(phase)), &of_update]);
    }
    println!("\n{table}");

    let smoothed = report.curve.smoothed(20);
    println!(
        "mean episode reward: first {:.1} -> last {:.1}",
        smoothed.first().copied().unwrap_or(0.0),
        smoothed.last().copied().unwrap_or(0.0)
    );
    let score = trainer.evaluate(10)?;
    println!("greedy evaluation over 10 episodes: {score:.1}");
    Ok(())
}
