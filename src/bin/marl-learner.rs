//! `marl-learner` — learner process of the distributed runtime.
//!
//! ```text
//! marl-learner (--socket PATH | --tcp HOST:PORT | --lockstep)
//!              [--workers N] [--worker-bin PATH] [--max-restarts K]
//!              [--algo maddpg|matd3] [--scenario NAME] [--agents N]
//!              [--sampler S] [--episodes E] [--batch B] [--capacity C]
//!              [--seed S] [--kernel auto|scalar|simd]
//!              [--steps-per-frame F] [--params-every U]
//!              [--dead-after-ms MS] [--stall-timeout-ms MS]
//!              [--chaos-kill-after-frames K] [--chaos-victim V]
//!              [--metrics-out FILE] [--metrics-every N] [--prometheus-out FILE]
//!              [--trace-out FILE]
//! ```
//!
//! Owns the replay store and the trainer. With `--socket`/`--tcp` it
//! binds a listener, spawns `--workers` `marl-worker` child processes
//! (restarting any the supervisor declares dead, up to
//! `--max-restarts`), and trains free-running until the episode target.
//! `--lockstep` instead runs one in-process worker thread over the
//! deterministic loopback — training output is bitwise identical to
//! `marl-train` at the same configuration. `--chaos-kill-after-frames`
//! arms the chaos drill: SIGKILL `--chaos-victim` after it delivers K
//! step frames, then let supervision restart and re-admit it.

use marl_repro::algo::{Algorithm, Task, TrainConfig};
use marl_repro::core::SamplerConfig;
use marl_repro::dist::{
    loopback_pair, run_worker, Backoff, ChaosPlan, DistError, Endpoint, Learner, LearnerOptions,
    NoAccept, TcpAcceptor, Transport, UnixAcceptor, WorkerPool,
};
use marl_repro::obs::{KernelTally, SnapshotContext, Telemetry, TelemetryConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn parse_num(v: &str) -> Result<usize, CliError> {
    v.parse().map_err(|_| CliError(format!("not a number: {v}")))
}

fn parse_sampler(v: &str) -> Result<SamplerConfig, CliError> {
    Ok(match v {
        "baseline" | "uniform" => SamplerConfig::Uniform,
        "n16r64" => SamplerConfig::LocalityN16R64,
        "n64r16" => SamplerConfig::LocalityN64R16,
        "per" => SamplerConfig::Per,
        "ip" => SamplerConfig::IpLocality,
        other => return Err(CliError(format!("unknown sampler {other}"))),
    })
}

#[derive(Debug, Clone)]
enum Mode {
    Unix(PathBuf),
    Tcp(String),
    Lockstep,
}

#[derive(Debug)]
struct Cli {
    mode: Mode,
    workers: u32,
    worker_bin: Option<PathBuf>,
    max_restarts: u32,
    config: TrainConfig,
    opts: LearnerOptions,
    chaos_after_frames: u64,
    chaos_victim: u32,
    telemetry: TelemetryConfig,
}

fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut mode: Option<Mode> = None;
    let mut workers = 2u32;
    let mut worker_bin: Option<PathBuf> = None;
    let mut max_restarts = 2u32;
    let mut algorithm = Algorithm::Maddpg;
    let mut task = Task::PredatorPrey;
    let mut agents = 3usize;
    let mut sampler = SamplerConfig::Uniform;
    let mut episodes = 20usize;
    let mut batch = 64usize;
    let mut capacity = 20_000usize;
    let mut seed = 0u64;
    let mut kernel = marl_repro::nn::kernels::KernelChoice::Auto;
    let mut opts = LearnerOptions::default();
    let mut chaos_after_frames = 0u64;
    let mut chaos_victim = 1u32;
    let mut telemetry = TelemetryConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| CliError(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--socket" => mode = Some(Mode::Unix(value("--socket")?.into())),
            "--tcp" => mode = Some(Mode::Tcp(value("--tcp")?.clone())),
            "--lockstep" => mode = Some(Mode::Lockstep),
            "--workers" => workers = parse_num(value("--workers")?)? as u32,
            "--worker-bin" => worker_bin = Some(value("--worker-bin")?.into()),
            "--max-restarts" => max_restarts = parse_num(value("--max-restarts")?)? as u32,
            "--algo" => {
                algorithm = match value("--algo")?.as_str() {
                    "maddpg" => Algorithm::Maddpg,
                    "matd3" => Algorithm::Matd3,
                    v => return Err(CliError(format!("unknown algorithm {v}"))),
                }
            }
            "--task" | "--scenario" => {
                let v = value("--scenario")?;
                task = match Task::from_name(v) {
                    Some(id) => id,
                    None => {
                        let known: Vec<&str> = Task::all().iter().map(|s| s.label()).collect();
                        return Err(CliError(format!(
                            "unknown scenario {v} (registered: {})",
                            known.join(", ")
                        )));
                    }
                }
            }
            "--agents" => agents = parse_num(value("--agents")?)?,
            "--sampler" => sampler = parse_sampler(value("--sampler")?)?,
            "--episodes" => episodes = parse_num(value("--episodes")?)?,
            "--batch" => batch = parse_num(value("--batch")?)?,
            "--capacity" => capacity = parse_num(value("--capacity")?)?,
            "--seed" => seed = parse_num(value("--seed")?)? as u64,
            "--kernel" => {
                let v = value("--kernel")?;
                kernel = marl_repro::nn::kernels::KernelChoice::parse(v)
                    .ok_or_else(|| CliError(format!("unknown kernel {v}")))?;
            }
            "--steps-per-frame" => opts.steps_per_frame = parse_num(value("--steps-per-frame")?)?,
            "--params-every" => {
                opts.params_every_updates = parse_num(value("--params-every")?)? as u64;
            }
            "--dead-after-ms" => {
                let ms = parse_num(value("--dead-after-ms")?)? as u64;
                opts.supervisor.dead_after = Duration::from_millis(ms);
                opts.supervisor.suspect_after =
                    Duration::from_millis(ms / 4).max(Duration::from_millis(1));
            }
            "--stall-timeout-ms" => {
                opts.stall_timeout =
                    Duration::from_millis(parse_num(value("--stall-timeout-ms")?)? as u64);
            }
            "--chaos-kill-after-frames" => {
                chaos_after_frames = parse_num(value("--chaos-kill-after-frames")?)? as u64;
            }
            "--chaos-victim" => chaos_victim = parse_num(value("--chaos-victim")?)? as u32,
            "--metrics-out" => telemetry.metrics_out = Some(value("--metrics-out")?.into()),
            "--metrics-every" => {
                telemetry.metrics_every = parse_num(value("--metrics-every")?)? as u64;
            }
            "--prometheus-out" => {
                telemetry.prometheus_out = Some(value("--prometheus-out")?.into());
            }
            "--trace-out" => telemetry.trace_out = Some(value("--trace-out")?.into()),
            "--help" | "-h" => return Err(CliError("help".into())),
            v => return Err(CliError(format!("unknown flag {v}"))),
        }
    }
    let Some(mode) = mode else {
        return Err(CliError("one of --socket/--tcp/--lockstep is required".into()));
    };
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".into()));
    }
    let mut config = TrainConfig::paper_defaults(algorithm, task, agents)
        .with_sampler(sampler)
        .with_episodes(episodes)
        .with_batch_size(batch)
        .with_buffer_capacity(capacity)
        .with_seed(seed)
        .with_kernel(kernel);
    // Same short-run warmup policy as marl-train, so small distributed
    // smokes still perform updates.
    config.warmup = (2 * batch).clamp(batch, capacity / 2).max(batch);
    if telemetry.metrics_out.is_some() && telemetry.metrics_every == 0 {
        telemetry.metrics_every = 10;
    }
    // Fleet merges label the learner's trace lane by its role.
    telemetry.process_name = Some("learner".to_string());
    Ok(Cli {
        mode,
        workers,
        worker_bin,
        max_restarts,
        config,
        opts,
        chaos_after_frames,
        chaos_victim,
        telemetry,
    })
}

fn usage() {
    eprintln!(
        "usage: marl-learner (--socket PATH | --tcp HOST:PORT | --lockstep)\n\
         \x20                   [--workers N] [--worker-bin PATH] [--max-restarts K]\n\
         \x20                   [--algo maddpg|matd3] [--scenario NAME] [--agents N]\n\
         \x20                   [--sampler baseline|n16r64|n64r16|per|ip] [--episodes E]\n\
         \x20                   [--batch B] [--capacity C] [--seed S]\n\
         \x20                   [--kernel auto|scalar|simd] [--steps-per-frame F]\n\
         \x20                   [--params-every U] [--dead-after-ms MS]\n\
         \x20                   [--stall-timeout-ms MS] [--chaos-kill-after-frames K]\n\
         \x20                   [--chaos-victim V] [--metrics-out FILE] [--metrics-every N]\n\
         \x20                   [--prometheus-out FILE] [--trace-out FILE]\n\
         \n\
         \x20 --lockstep                runs one in-process worker over the deterministic\n\
         \x20                           loopback (bitwise-identical to marl-train)\n\
         \x20 --worker-bin PATH         marl-worker binary (default: next to marl-learner)\n\
         \x20 --chaos-kill-after-frames SIGKILL --chaos-victim after K step frames\n\
         \x20                           (0 = off), then restart it under supervision"
    );
}

/// The sibling `marl-worker` binary, next to the running learner.
fn default_worker_bin() -> Result<PathBuf, DistError> {
    let me = std::env::current_exe().map_err(|e| DistError::Io(e.to_string()))?;
    Ok(me.with_file_name("marl-worker"))
}

fn serve_lockstep_inprocess(learner: &mut Learner) -> Result<(), DistError> {
    let (mut learner_end, worker_end) = loopback_pair(1024, Duration::from_secs(10));
    let handle = std::thread::spawn(move || {
        let mut slot = Some(worker_end);
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 0);
        run_worker(
            0,
            move || {
                slot.take()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .ok_or(DistError::Disconnected)
            },
            &mut backoff,
            1,
        )
    });
    let served = learner.serve_lockstep(&mut learner_end);
    let worker = handle.join().map_err(|_| DistError::Protocol("worker thread panicked".into()));
    served?;
    worker?.map(|_| ())
}

fn serve_fleet(learner: &mut Learner, cli: &Cli) -> Result<(), DistError> {
    let bin = match &cli.worker_bin {
        Some(p) => p.clone(),
        None => default_worker_bin()?,
    };
    let (endpoint, mut acceptor): (Endpoint, Box<dyn marl_repro::dist::Acceptor>) = match &cli.mode
    {
        Mode::Unix(path) => (Endpoint::Unix(path.clone()), Box::new(UnixAcceptor::bind(path)?)),
        Mode::Tcp(addr) => {
            let acceptor = TcpAcceptor::bind(addr)?;
            let bound = acceptor.local_addr()?.to_string();
            println!("listening on tcp {bound}");
            (Endpoint::Tcp(bound), Box::new(acceptor))
        }
        Mode::Lockstep => unreachable!("lockstep handled by caller"),
    };
    let mut pool = WorkerPool::new(bin, endpoint, cli.max_restarts);
    if cli.chaos_after_frames > 0 {
        pool = pool.with_chaos(ChaosPlan {
            victim: cli.chaos_victim,
            after_frames: cli.chaos_after_frames,
        });
    }
    for id in 0..cli.workers {
        pool.spawn(id).map_err(|e| DistError::Io(format!("spawning worker {id}: {e}")))?;
    }
    let served = learner.serve_free(Vec::new(), acceptor.as_mut(), Some(&mut pool));
    if cli.chaos_after_frames > 0 {
        println!(
            "chaos: kill fired = {} | restarts of victim {} = {}",
            pool.chaos_fired(),
            cli.chaos_victim,
            pool.restart_count(cli.chaos_victim)
        );
    }
    pool.join_all(Duration::from_secs(5));
    served
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(v) => v,
        Err(CliError(msg)) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    println!(
        "learner: {} / {} / {} agents / sampler {} / {} episodes / {}",
        cli.config.algorithm.label(),
        cli.config.task.label(),
        cli.config.agents,
        cli.config.sampler.label(),
        cli.config.episodes,
        match &cli.mode {
            Mode::Unix(p) => format!("unix {}", p.display()),
            Mode::Tcp(a) => format!("tcp {a}"),
            Mode::Lockstep => "in-process lockstep loopback".into(),
        }
    );
    let mut learner = match Learner::new(cli.config, cli.opts) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let telemetry_requested = cli.telemetry.metrics_out.is_some()
        || cli.telemetry.prometheus_out.is_some()
        || cli.telemetry.trace_out.is_some();
    let tel: Option<Arc<Telemetry>> = if telemetry_requested {
        match Telemetry::new(&cli.telemetry) {
            Ok(t) => {
                let t = Arc::new(t);
                learner.trainer_mut().attach_telemetry(Arc::clone(&t));
                Some(t)
            }
            Err(e) => {
                eprintln!("error: opening telemetry sinks failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let served = match &cli.mode {
        Mode::Lockstep => {
            let _ = NoAccept; // fixed topology: no listener in this mode
            serve_lockstep_inprocess(&mut learner)
        }
        _ => serve_fleet(&mut learner, &cli),
    };
    if let Err(e) = served {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let sup = learner.supervisor();
    println!(
        "served {} episodes | {} parameter epochs | {} update iterations | env steps {}",
        learner.episodes_recorded(),
        learner.epoch(),
        learner.trainer().update_iterations(),
        learner.trainer().env_steps()
    );
    println!(
        "supervision: {} workers alive | {} reconnects | {} restarts | {} quarantined frames",
        sup.alive(),
        sup.total_reconnects(),
        sup.total_restarts(),
        sup.total_quarantined()
    );
    if let Some(t) = &tel {
        let (scalar, simd) = marl_repro::nn::kernels::dispatch_tally();
        let snap = t.finish(&SnapshotContext {
            episode: learner.episodes_recorded() as u64,
            profile: learner.trainer().profile(),
            kernels: KernelTally { scalar, simd },
        });
        println!(
            "telemetry: {} updates | {} quarantined | {} reconnects | {} restarts",
            snap.updates,
            snap.dist_quarantined_frames,
            snap.dist_reconnects,
            snap.dist_worker_restarts
        );
        // The single-line process summary the fleet orchestrator parses
        // from stdout — keep it the last line printed.
        let summary = marl_repro::obs::ProcessSummary {
            process: "learner".to_string(),
            worker_id: 0,
            epoch_unix_ns: t.tracer.unix_anchor_ns(),
            clock_offset_ns: 0,
            clock_rtt_ns: 0,
            clock_samples: 0,
            spans_dropped: snap.spans_dropped,
            episodes: learner.episodes_recorded() as u64,
            env_steps: learner.trainer().env_steps(),
            requests: 0,
        };
        println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
    }
    ExitCode::SUCCESS
}
