//! `marl-worker` — rollout-worker process of the distributed runtime.
//!
//! ```text
//! marl-worker --worker-id N (--socket PATH | --tcp HOST:PORT)
//!             [--max-attempts K] [--backoff-base-ms B] [--backoff-cap-ms C]
//! ```
//!
//! Connects to a `marl-learner`, introduces itself, and rolls out
//! episodes from the configuration the learner's `Welcome` carries —
//! the worker itself takes no training flags, so a fleet can never
//! disagree with its learner about hyperparameters. Connection failures
//! retry with exponential backoff + jitter; after a mid-run failure the
//! worker reconnects with `resume: true` and is re-admitted from its
//! last episode boundary.
//!
//! Telemetry is environment-driven (the worker pool nulls worker stdout
//! and passes its own environment down): when
//! `MARL_WORKER_TELEMETRY_DIR` names a directory, the worker writes
//! `worker-<id>.trace.json` / `.metrics.jsonl` / `.prom` /
//! `.summary.json` there — trace contexts ride its frames and the
//! learner-relative clock offset is estimated from heartbeat acks.

use marl_repro::dist::{run_worker_traced, Backoff, DistError, StreamTransport, Transport};
use marl_repro::obs::{KernelTally, ProcessSummary, SnapshotContext, Telemetry, TelemetryConfig};
use marl_repro::perf::phase::PhaseProfile;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Endpoint {
    Unix(String),
    Tcp(String),
}

/// With `--features failpoints`, `MARL_FAILPOINTS` arms transport
/// faults from the environment — which a supervising `marl-learner`
/// passes down to every worker it spawns, so a whole fleet can run a
/// chaos drill from one variable. Comma-separated `site=kind:arg[:skip]`
/// entries, e.g. `transport::send=bitflip:2000:3,transport::send=delay:50`
/// (faults on one site queue up and fire in order).
#[cfg(feature = "failpoints")]
fn arm_failpoints_from_env() {
    use marl_repro::algo::failpoint::{self, Fault};
    let Ok(spec) = std::env::var("MARL_FAILPOINTS") else { return };
    for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((site, fault)) = entry.split_once('=') else {
            eprintln!("MARL_FAILPOINTS: ignoring malformed entry {entry:?}");
            continue;
        };
        let site: &'static str = match site {
            "transport::send" => "transport::send",
            "transport::recv" => "transport::recv",
            other => {
                eprintln!("MARL_FAILPOINTS: ignoring unknown site {other:?}");
                continue;
            }
        };
        let mut parts = fault.split(':');
        let kind = parts.next().unwrap_or("");
        let arg: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        let skip: u32 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        let fault = match kind {
            "delay" => Fault::Delay(arg),
            "bitflip" => Fault::BitFlip(arg as usize),
            "truncate" => Fault::Truncate(arg as usize),
            other => {
                eprintln!("MARL_FAILPOINTS: ignoring unknown fault {other:?}");
                continue;
            }
        };
        failpoint::arm_after(site, fault, skip);
        eprintln!("armed failpoint {site} = {fault:?} (skip {skip})");
    }
}

fn usage() {
    eprintln!(
        "usage: marl-worker --worker-id N (--socket PATH | --tcp HOST:PORT)\n\
         \x20                  [--max-attempts K] [--backoff-base-ms B] [--backoff-cap-ms C]\n\
         \x20                  [--resume]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worker_id: Option<u32> = None;
    let mut endpoint: Option<Endpoint> = None;
    let mut max_attempts = 10u32;
    let mut backoff_base_ms = 50u64;
    let mut backoff_cap_ms = 2_000u64;
    let mut resume = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed: Result<(), String> = (|| {
            match flag.as_str() {
                "--worker-id" => {
                    worker_id = Some(
                        value("--worker-id")?.parse().map_err(|_| "bad --worker-id".to_string())?,
                    );
                }
                "--socket" => endpoint = Some(Endpoint::Unix(value("--socket")?.clone())),
                "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp")?.clone())),
                "--max-attempts" => {
                    max_attempts = value("--max-attempts")?
                        .parse()
                        .map_err(|_| "bad --max-attempts".to_string())?;
                }
                "--backoff-base-ms" => {
                    backoff_base_ms = value("--backoff-base-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-base-ms".to_string())?;
                }
                "--backoff-cap-ms" => {
                    backoff_cap_ms = value("--backoff-cap-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-cap-ms".to_string())?;
                }
                // Set by a supervising learner on respawn: introduce
                // ourselves with `resume: true` so the learner re-admits
                // from its last snapshot for this id.
                "--resume" => resume = true,
                "--help" | "-h" => return Err("help".into()),
                v => return Err(format!("unknown flag {v}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    }
    let (Some(worker_id), Some(endpoint)) = (worker_id, endpoint) else {
        eprintln!("error: --worker-id and one of --socket/--tcp are required\n");
        usage();
        return ExitCode::FAILURE;
    };

    let connect = || -> Result<Box<dyn Transport>, DistError> {
        Ok(match &endpoint {
            Endpoint::Unix(path) => {
                Box::new(StreamTransport::unix(std::os::unix::net::UnixStream::connect(path)?))
            }
            Endpoint::Tcp(addr) => {
                Box::new(StreamTransport::tcp(std::net::TcpStream::connect(addr.as_str())?))
            }
        })
    };
    #[cfg(feature = "failpoints")]
    arm_failpoints_from_env();

    // Jitter seeded by the worker id: retries of a restarted fleet are
    // reproducible and decorrelated across workers.
    let mut backoff = Backoff::new(
        Duration::from_millis(backoff_base_ms),
        Duration::from_millis(backoff_cap_ms),
        worker_id as u64,
    );
    let (telemetry_dir, telemetry) = telemetry_from_env(worker_id);
    let (stats, result) = run_worker_traced(
        worker_id,
        connect,
        &mut backoff,
        max_attempts,
        resume,
        telemetry.clone(),
    );
    // Artifacts are written whatever the outcome: a worker orphaned
    // mid-episode by a learner that reached its target still measured
    // real clock offsets and progress, and the fleet merge wants them.
    if let (Some(dir), Some(t)) = (&telemetry_dir, &telemetry) {
        write_artifacts(dir, worker_id, t, &stats);
    }
    match result {
        Ok(outcome) => {
            eprintln!("worker {worker_id}: done ({outcome:?})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Opens the environment-driven telemetry sinks (`None` when
/// `MARL_WORKER_TELEMETRY_DIR` is unset). Sink failures are reported and
/// telemetry is skipped — it never aborts rollout.
fn telemetry_from_env(worker_id: u32) -> (Option<PathBuf>, Option<Arc<Telemetry>>) {
    let Some(dir) = std::env::var_os("MARL_WORKER_TELEMETRY_DIR").map(PathBuf::from) else {
        return (None, None);
    };
    let cfg = TelemetryConfig {
        trace_out: Some(dir.join(format!("worker-{worker_id}.trace.json"))),
        metrics_out: Some(dir.join(format!("worker-{worker_id}.metrics.jsonl"))),
        prometheus_out: Some(dir.join(format!("worker-{worker_id}.prom"))),
        process_name: Some(format!("worker-{worker_id}")),
        ..TelemetryConfig::default()
    };
    match Telemetry::new(&cfg) {
        Ok(t) => (Some(dir), Some(Arc::new(t))),
        Err(e) => {
            eprintln!("worker {worker_id}: opening telemetry sinks failed ({e}); tracing off");
            (None, None)
        }
    }
}

/// Drains the trace, writes the final snapshot, and records the
/// single-line process summary the fleet orchestrator collects.
fn write_artifacts(
    dir: &std::path::Path,
    worker_id: u32,
    telemetry: &Telemetry,
    stats: &marl_repro::dist::WorkerStats,
) {
    let profile = PhaseProfile::new();
    let snap = telemetry.finish(&SnapshotContext {
        episode: stats.episodes_done,
        profile: &profile,
        kernels: KernelTally::default(),
    });
    let summary = ProcessSummary {
        process: format!("worker-{worker_id}"),
        worker_id,
        epoch_unix_ns: telemetry.tracer.unix_anchor_ns(),
        clock_offset_ns: stats.clock_offset_ns,
        clock_rtt_ns: stats.clock_rtt_ns,
        clock_samples: stats.clock_samples,
        spans_dropped: snap.spans_dropped,
        episodes: stats.episodes_done,
        env_steps: stats.env_steps,
        requests: 0,
    };
    let line = serde_json::to_string(&summary).expect("summary serializes");
    let path = dir.join(format!("worker-{worker_id}.summary.json"));
    if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
        eprintln!("worker {worker_id}: writing {} failed: {e}", path.display());
    }
}
