//! `marl-worker` — rollout-worker process of the distributed runtime.
//!
//! ```text
//! marl-worker --worker-id N (--socket PATH | --tcp HOST:PORT)
//!             [--max-attempts K] [--backoff-base-ms B] [--backoff-cap-ms C]
//! ```
//!
//! Connects to a `marl-learner`, introduces itself, and rolls out
//! episodes from the configuration the learner's `Welcome` carries —
//! the worker itself takes no training flags, so a fleet can never
//! disagree with its learner about hyperparameters. Connection failures
//! retry with exponential backoff + jitter; after a mid-run failure the
//! worker reconnects with `resume: true` and is re-admitted from its
//! last episode boundary.

use marl_repro::dist::{run_worker_from, Backoff, DistError, StreamTransport, Transport};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Endpoint {
    Unix(String),
    Tcp(String),
}

/// With `--features failpoints`, `MARL_FAILPOINTS` arms transport
/// faults from the environment — which a supervising `marl-learner`
/// passes down to every worker it spawns, so a whole fleet can run a
/// chaos drill from one variable. Comma-separated `site=kind:arg[:skip]`
/// entries, e.g. `transport::send=bitflip:2000:3,transport::send=delay:50`
/// (faults on one site queue up and fire in order).
#[cfg(feature = "failpoints")]
fn arm_failpoints_from_env() {
    use marl_repro::algo::failpoint::{self, Fault};
    let Ok(spec) = std::env::var("MARL_FAILPOINTS") else { return };
    for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((site, fault)) = entry.split_once('=') else {
            eprintln!("MARL_FAILPOINTS: ignoring malformed entry {entry:?}");
            continue;
        };
        let site: &'static str = match site {
            "transport::send" => "transport::send",
            "transport::recv" => "transport::recv",
            other => {
                eprintln!("MARL_FAILPOINTS: ignoring unknown site {other:?}");
                continue;
            }
        };
        let mut parts = fault.split(':');
        let kind = parts.next().unwrap_or("");
        let arg: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        let skip: u32 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        let fault = match kind {
            "delay" => Fault::Delay(arg),
            "bitflip" => Fault::BitFlip(arg as usize),
            "truncate" => Fault::Truncate(arg as usize),
            other => {
                eprintln!("MARL_FAILPOINTS: ignoring unknown fault {other:?}");
                continue;
            }
        };
        failpoint::arm_after(site, fault, skip);
        eprintln!("armed failpoint {site} = {fault:?} (skip {skip})");
    }
}

fn usage() {
    eprintln!(
        "usage: marl-worker --worker-id N (--socket PATH | --tcp HOST:PORT)\n\
         \x20                  [--max-attempts K] [--backoff-base-ms B] [--backoff-cap-ms C]\n\
         \x20                  [--resume]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worker_id: Option<u32> = None;
    let mut endpoint: Option<Endpoint> = None;
    let mut max_attempts = 10u32;
    let mut backoff_base_ms = 50u64;
    let mut backoff_cap_ms = 2_000u64;
    let mut resume = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed: Result<(), String> = (|| {
            match flag.as_str() {
                "--worker-id" => {
                    worker_id = Some(
                        value("--worker-id")?.parse().map_err(|_| "bad --worker-id".to_string())?,
                    );
                }
                "--socket" => endpoint = Some(Endpoint::Unix(value("--socket")?.clone())),
                "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp")?.clone())),
                "--max-attempts" => {
                    max_attempts = value("--max-attempts")?
                        .parse()
                        .map_err(|_| "bad --max-attempts".to_string())?;
                }
                "--backoff-base-ms" => {
                    backoff_base_ms = value("--backoff-base-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-base-ms".to_string())?;
                }
                "--backoff-cap-ms" => {
                    backoff_cap_ms = value("--backoff-cap-ms")?
                        .parse()
                        .map_err(|_| "bad --backoff-cap-ms".to_string())?;
                }
                // Set by a supervising learner on respawn: introduce
                // ourselves with `resume: true` so the learner re-admits
                // from its last snapshot for this id.
                "--resume" => resume = true,
                "--help" | "-h" => return Err("help".into()),
                v => return Err(format!("unknown flag {v}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    }
    let (Some(worker_id), Some(endpoint)) = (worker_id, endpoint) else {
        eprintln!("error: --worker-id and one of --socket/--tcp are required\n");
        usage();
        return ExitCode::FAILURE;
    };

    let connect = || -> Result<Box<dyn Transport>, DistError> {
        Ok(match &endpoint {
            Endpoint::Unix(path) => {
                Box::new(StreamTransport::unix(std::os::unix::net::UnixStream::connect(path)?))
            }
            Endpoint::Tcp(addr) => {
                Box::new(StreamTransport::tcp(std::net::TcpStream::connect(addr.as_str())?))
            }
        })
    };
    #[cfg(feature = "failpoints")]
    arm_failpoints_from_env();

    // Jitter seeded by the worker id: retries of a restarted fleet are
    // reproducible and decorrelated across workers.
    let mut backoff = Backoff::new(
        Duration::from_millis(backoff_base_ms),
        Duration::from_millis(backoff_cap_ms),
        worker_id as u64,
    );
    match run_worker_from(worker_id, connect, &mut backoff, max_attempts, resume) {
        Ok(outcome) => {
            eprintln!("worker {worker_id}: done ({outcome:?})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}
