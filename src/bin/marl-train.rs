//! `marl-train` — command-line entry point for training runs.
//!
//! ```text
//! marl-train [--algo maddpg|matd3] [--scenario NAME] [--agents N]
//!            [--sampler baseline|n16r64|n64r16|per|ip|per-reuse:W]
//!            [--layout per-agent|interleaved] [--episodes E] [--batch B]
//!            [--capacity C] [--threads T] [--update-threads U] [--seed S]
//!            [--kernel auto|scalar|simd] [--num-envs K] [--eval-episodes K]
//!            [--checkpoint-out FILE] [--checkpoint-every N] [--resume FILE]
//!            [--trace-out FILE] [--metrics-out FILE] [--metrics-every N]
//!            [--prometheus-out FILE] [--hw-counters]
//! ```
//!
//! Prints the phase breakdown and reward summary. `--checkpoint-out`
//! writes crash-safe full checkpoints (atomic rename + CRC + `.prev`
//! rotation); with `--checkpoint-every N` the run autosaves every N
//! episodes, and `--resume` continues a run bitwise-identically from such
//! a file (falling back to `.prev` when the live file is corrupt).
//!
//! Telemetry: `--trace-out` records a Chrome trace-event JSON (load it in
//! Perfetto or `chrome://tracing`), `--metrics-out` streams JSONL metric
//! snapshots every `--metrics-every` episodes plus a final one, and
//! `--hw-counters` brackets the mini-batch sampling phase with live
//! `perf_event_open` hardware counters when the kernel permits.

use marl_repro::algo::checkpoint::{load_checkpoint_with_fallback, write_checkpoint_file};
use marl_repro::algo::{Algorithm, LayoutMode, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::obs::{KernelTally, SnapshotContext, Telemetry, TelemetryConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug)]
struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn parse_sampler(v: &str) -> Result<SamplerConfig, CliError> {
    Ok(match v {
        "baseline" | "uniform" => SamplerConfig::Uniform,
        "n16r64" => SamplerConfig::LocalityN16R64,
        "n64r16" => SamplerConfig::LocalityN64R16,
        "per" => SamplerConfig::Per,
        "ip" => SamplerConfig::IpLocality,
        other => {
            if let Some(w) = other.strip_prefix("per-reuse:") {
                let window: usize = w
                    .parse()
                    .map_err(|_| CliError(format!("bad reuse window in --sampler {other}")))?;
                SamplerConfig::PerReuse { window }
            } else if let Some(n) = other.strip_prefix("n") {
                let neighbors: usize =
                    n.parse().map_err(|_| CliError(format!("unknown sampler {other}")))?;
                SamplerConfig::Locality { neighbors }
            } else {
                return Err(CliError(format!("unknown sampler {other}")));
            }
        }
    })
}

/// Everything `main` needs from the command line.
#[derive(Debug)]
struct Cli {
    config: TrainConfig,
    eval_episodes: usize,
    checkpoint_out: Option<String>,
    resume: Option<String>,
    telemetry: TelemetryConfig,
}

fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut algorithm = Algorithm::Maddpg;
    let mut task = Task::PredatorPrey;
    let mut agents = 3usize;
    let mut sampler = SamplerConfig::Uniform;
    let mut layout = LayoutMode::PerAgent;
    let mut episodes = 300usize;
    let mut batch = 256usize;
    let mut capacity = 50_000usize;
    let mut threads = 1usize;
    let mut update_threads = 1usize;
    let mut seed = 0u64;
    let mut kernel = marl_repro::nn::kernels::KernelChoice::Auto;
    let mut num_envs = 1usize;
    let mut eval_episodes = 10usize;
    let mut checkpoint_out = None;
    let mut checkpoint_every = 0usize;
    let mut resume = None;
    let mut telemetry = TelemetryConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, CliError> {
            it.next().ok_or_else(|| CliError(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--algo" => {
                algorithm = match value("--algo")?.as_str() {
                    "maddpg" => Algorithm::Maddpg,
                    "matd3" => Algorithm::Matd3,
                    v => return Err(CliError(format!("unknown algorithm {v}"))),
                }
            }
            "--task" | "--scenario" => {
                let v = value("--scenario")?;
                task = match Task::from_name(v) {
                    Some(id) => id,
                    None => {
                        let known: Vec<&str> = Task::all().iter().map(|s| s.label()).collect();
                        return Err(CliError(format!(
                            "unknown scenario {v} (registered: {})",
                            known.join(", ")
                        )));
                    }
                }
            }
            "--agents" => agents = parse_num(value("--agents")?)?,
            "--sampler" => sampler = parse_sampler(value("--sampler")?)?,
            "--layout" => {
                layout = match value("--layout")?.as_str() {
                    "per-agent" => LayoutMode::PerAgent,
                    "interleaved" => LayoutMode::Interleaved,
                    v => return Err(CliError(format!("unknown layout {v}"))),
                }
            }
            "--episodes" => episodes = parse_num(value("--episodes")?)?,
            "--batch" => batch = parse_num(value("--batch")?)?,
            "--capacity" => capacity = parse_num(value("--capacity")?)?,
            "--threads" => threads = parse_num(value("--threads")?)?,
            "--update-threads" => update_threads = parse_num(value("--update-threads")?)?,
            "--seed" => seed = parse_num(value("--seed")?)? as u64,
            "--kernel" => {
                let v = value("--kernel")?;
                kernel = marl_repro::nn::kernels::KernelChoice::parse(v)
                    .ok_or_else(|| CliError(format!("unknown kernel {v}")))?;
            }
            "--num-envs" => {
                num_envs = parse_num(value("--num-envs")?)?;
                if num_envs == 0 {
                    return Err(CliError("--num-envs must be at least 1".into()));
                }
            }
            "--eval-episodes" => eval_episodes = parse_num(value("--eval-episodes")?)?,
            "--checkpoint-out" => checkpoint_out = Some(value("--checkpoint-out")?.clone()),
            "--checkpoint-every" => checkpoint_every = parse_num(value("--checkpoint-every")?)?,
            "--resume" => resume = Some(value("--resume")?.clone()),
            "--trace-out" => telemetry.trace_out = Some(value("--trace-out")?.into()),
            "--metrics-out" => telemetry.metrics_out = Some(value("--metrics-out")?.into()),
            "--metrics-every" => {
                telemetry.metrics_every = parse_num(value("--metrics-every")?)? as u64;
            }
            "--prometheus-out" => {
                telemetry.prometheus_out = Some(value("--prometheus-out")?.into());
            }
            "--span-capacity" => telemetry.span_capacity = parse_num(value("--span-capacity")?)?,
            "--hw-counters" => telemetry.hw_counters = true,
            "--help" | "-h" => {
                return Err(CliError("help".into()));
            }
            v => return Err(CliError(format!("unknown flag {v}"))),
        }
    }
    let mut config = TrainConfig::paper_defaults(algorithm, task, agents)
        .with_sampler(sampler)
        .with_layout(layout)
        .with_episodes(episodes)
        .with_batch_size(batch)
        .with_buffer_capacity(capacity)
        .with_sampling_threads(threads)
        .with_update_threads(update_threads)
        .with_seed(seed)
        .with_kernel(kernel)
        .with_num_envs(num_envs)
        .with_checkpoint_every(checkpoint_every);
    // Keep the warmup proportionate to the run so short CLI runs still
    // perform updates.
    config.warmup = (2 * batch).clamp(batch, capacity / 2).max(batch);
    if checkpoint_every > 0 && checkpoint_out.is_none() {
        return Err(CliError("--checkpoint-every requires --checkpoint-out".into()));
    }
    // A snapshot cadence without a sink would silently record nothing.
    if telemetry.metrics_every > 0 && telemetry.metrics_out.is_none() {
        return Err(CliError("--metrics-every requires --metrics-out".into()));
    }
    // Default cadence: with a metrics sink but no explicit cadence,
    // snapshot every 10 episodes (plus the final snapshot).
    if telemetry.metrics_out.is_some() && telemetry.metrics_every == 0 {
        telemetry.metrics_every = 10;
    }
    Ok(Cli { config, eval_episodes, checkpoint_out, resume, telemetry })
}

fn parse_num(v: &str) -> Result<usize, CliError> {
    v.parse().map_err(|_| CliError(format!("not a number: {v}")))
}

fn usage() {
    eprintln!(
        "usage: marl-train [--algo maddpg|matd3] [--scenario NAME] [--agents N]\n\
         \x20                 [--sampler baseline|n16r64|n64r16|nK|per|ip|per-reuse:W]\n\
         \x20                 [--layout per-agent|interleaved] [--episodes E] [--batch B]\n\
         \x20                 [--capacity C] [--threads T] [--update-threads U] [--seed S]\n\
         \x20                 [--kernel auto|scalar|simd] [--num-envs K] [--eval-episodes K]\n\
         \x20                 [--checkpoint-out FILE] [--checkpoint-every N] [--resume FILE]\n\
         \x20                 [--trace-out FILE] [--metrics-out FILE] [--metrics-every N]\n\
         \x20                 [--prometheus-out FILE] [--span-capacity N] [--hw-counters]\n\
         \n\
         \x20 --scenario NAME      MPE scenario from the registry: predator-prey (pp),\n\
         \x20                      cooperative-navigation (cn), physical-deception (pd),\n\
         \x20                      keep-away (ka), cooperative-reference (cr),\n\
         \x20                      world-comm (wc), or any registered plugin scenario;\n\
         \x20                      --task is accepted as an alias flag\n\
         \x20 --threads T          worker threads for each mini-batch gather (default 1)\n\
         \x20 --update-threads U   worker threads for the per-agent critic/actor updates\n\
         \x20                      (default 1; results are identical for any value)\n\
         \x20 --kernel K           NN compute kernels: auto (default; SIMD when the CPU\n\
         \x20                      has AVX2+FMA), scalar, or simd. The MARL_KERNEL env\n\
         \x20                      var sets the default when the flag is absent\n\
         \x20 --num-envs K         step K environment worlds per rollout iteration over\n\
         \x20                      SoA physics with batched inference (default 1; K=1 is\n\
         \x20                      bitwise-identical to the scalar rollout path)\n\
         \x20 --checkpoint-out F   write a crash-safe full checkpoint to F (atomic rename\n\
         \x20                      + CRC-32 + .prev rotation) when the run finishes\n\
         \x20 --checkpoint-every N additionally autosave to F every N episodes (0 = off;\n\
         \x20                      requires --checkpoint-out)\n\
         \x20 --resume F           resume bitwise-identically from a checkpoint file,\n\
         \x20                      falling back to F.prev when F is corrupt\n\
         \x20 --trace-out F        record spans to F as Chrome trace-event JSON\n\
         \x20                      (open in Perfetto or chrome://tracing)\n\
         \x20 --metrics-out F      stream metric snapshots to F as JSONL\n\
         \x20 --metrics-every N    episodes between snapshots (default 10 when\n\
         \x20                      --metrics-out is set; a final snapshot always writes)\n\
         \x20 --prometheus-out F   rewrite F in Prometheus text format at each snapshot\n\
         \x20 --span-capacity N    span ring size in events (default 65536)\n\
         \x20 --hw-counters        read live perf_event hardware counters around the\n\
         \x20                      sampling phase (falls back gracefully when denied)"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Cli { config, eval_episodes, checkpoint_out, resume, telemetry } = match parse_args(&args) {
        Ok(v) => v,
        Err(CliError(msg)) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            usage();
            return if msg == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    println!(
        "training {} / {} / {} agents / sampler {} / {} episodes",
        config.algorithm.label(),
        config.task.label(),
        config.agents,
        config.sampler.label(),
        config.episodes
    );
    let mut trainer = match Trainer::new(config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Attach telemetry when any sink or the hardware counters were
    // requested; a fully-default config records nothing anyone can read.
    let telemetry_requested = telemetry.trace_out.is_some()
        || telemetry.metrics_out.is_some()
        || telemetry.prometheus_out.is_some()
        || telemetry.hw_counters;
    let tel: Option<Arc<Telemetry>> = if telemetry_requested {
        match Telemetry::new(&telemetry) {
            Ok(t) => {
                let t = Arc::new(t);
                if telemetry.hw_counters && !t.hw_live() {
                    eprintln!(
                        "warning: perf_event_open unavailable (permissions/kernel); \
                         hardware counters disabled"
                    );
                }
                trainer.attach_telemetry(Arc::clone(&t));
                Some(t)
            }
            Err(e) => {
                eprintln!("error: opening telemetry sinks failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if let Some(path) = &resume {
        let loaded =
            load_checkpoint_with_fallback(Path::new(path)).and_then(|(ckpt, replay, from_prev)| {
                trainer.restore_full(ckpt, &replay).map(|()| from_prev)
            });
        match loaded {
            Ok(from_prev) => {
                if from_prev {
                    eprintln!("warning: {path} was unreadable; resumed from {path}.prev");
                }
                println!("resumed from {path} at episode {}", trainer.episodes_done());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match trainer.train_with_autosave(checkpoint_out.as_deref().map(Path::new)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\nwall time: {:?} | env steps: {} | update iterations: {}",
        report.wall_time, report.env_steps, report.update_iterations
    );
    if report.update_iterations == 0 {
        eprintln!(
            "warning: no network updates ran — increase --episodes or lower --batch \
             (warmup is 2x the batch size)"
        );
    }
    // The Figure-2 phase decomposition: accumulated time and
    // percent-of-total per phase, always printed.
    println!("{}", report.profile.breakdown_table());
    let window = (report.curve.len() / 5).max(1);
    println!("final score (smoothed): {:.2}", report.curve.final_score(window));
    if let Some(t) = &tel {
        // Final snapshot (fin: true) to every configured sink, then close
        // the trace file so the JSON array is well-formed.
        let (scalar, simd) = marl_repro::nn::kernels::dispatch_tally();
        let snap = t.finish(&SnapshotContext {
            episode: report.curve.len() as u64,
            profile: &report.profile,
            kernels: KernelTally { scalar, simd },
        });
        println!(
            "telemetry: {} updates | replay occupancy {:.1}% | run-length p50 {} | \
             {} spans dropped",
            snap.updates,
            snap.replay_occupancy * 100.0,
            snap.run_length.p50,
            snap.spans_dropped
        );
        if snap.hw_live {
            println!(
                "hw sampling counters over {} windows: {} instr | {} LLC miss | {} dTLB miss",
                snap.hw_windows,
                snap.hw_sampling.instructions,
                snap.hw_sampling.cache_misses,
                snap.hw_sampling.dtlb_misses
            );
        }
    }
    if eval_episodes > 0 {
        match trainer.evaluate(eval_episodes) {
            Ok(score) => println!("greedy evaluation over {eval_episodes} episodes: {score:.2}"),
            Err(e) => eprintln!("evaluation failed: {e}"),
        }
    }
    if let Some(path) = checkpoint_out {
        // A checkpoint the user asked for must actually be durable: any
        // serialization or I/O failure is fatal, not a warning.
        let written = trainer
            .checkpoint_full()
            .and_then(|(ckpt, replay)| write_checkpoint_file(Path::new(&path), &ckpt, &replay));
        match written {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
