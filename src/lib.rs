//! # marl-repro
//!
//! End-to-end reproduction of *"Characterizing and Optimizing the
//! End-to-End Performance of Multi-Agent Reinforcement Learning Systems"*
//! (IISWC 2024) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`nn`] — dense network substrate (matrices, MLPs, Adam,
//!   Gumbel-softmax);
//! * [`env`] — the multi-agent particle environments (predator-prey,
//!   cooperative navigation);
//! * [`core`] — replay storage plus the paper's sampling optimizations
//!   (locality-aware, PER, information-prioritized, layout reorganization);
//! * [`perf`] — phase timers and the cache/TLB simulator standing in for
//!   hardware counters;
//! * [`obs`] — runtime telemetry: zero-allocation span tracing, the
//!   metrics registry with JSONL/Prometheus exporters, and the live
//!   `perf_event` counter backend;
//! * [`algo`] — MADDPG / MATD3 / PER-MADDPG trainers;
//! * [`dist`] — the fault-tolerant distributed actor–learner runtime
//!   (CRC-framed transports, heartbeat supervision, quarantine,
//!   reconnect with backoff, worker-process restart);
//! * [`serve`] — micro-batched policy inference serving over the MARD
//!   wire format (adaptive batching, zero-allocation request path, hot
//!   checkpoint reload).
//!
//! See `examples/` for runnable entry points and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```no_run
//! use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
//! use marl_repro::core::SamplerConfig;
//!
//! let config = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
//!     .with_sampler(SamplerConfig::LocalityN64R16)
//!     .with_episodes(100);
//! let mut trainer = Trainer::new(config)?;
//! let report = trainer.train()?;
//! println!("trained {} episodes in {:?}", report.curve.len(), report.wall_time);
//! # Ok::<(), marl_repro::algo::TrainError>(())
//! ```

#![warn(missing_docs)]

pub use marl_algo as algo;
pub use marl_core as core;
pub use marl_dist as dist;
pub use marl_env as env;
pub use marl_nn as nn;
pub use marl_obs as obs;
pub use marl_perf as perf;
pub use marl_serve as serve;
