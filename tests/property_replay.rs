//! Property-based tests (proptest) on the replay/sampling core: data
//! integrity, plan bounds, layout equivalence, and sum-tree invariants
//! under arbitrary operation sequences.

use marl_repro::core::config::SamplerConfig;
use marl_repro::core::indices::SamplePlan;
use marl_repro::core::layout::InterleavedStore;
use marl_repro::core::multi::MultiAgentReplay;
use marl_repro::core::sumtree::SumTree;
use marl_repro::core::transition::{Transition, TransitionLayout};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn transition(layout: &TransitionLayout, tag: f32) -> Transition {
    Transition {
        obs: vec![tag; layout.obs_dim],
        action: vec![tag; layout.act_dim],
        reward: tag,
        next_obs: vec![tag + 0.25; layout.obs_dim],
        done: if (tag as usize).is_multiple_of(7) { 1.0 } else { 0.0 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pushing k rows then reading them back yields exactly the pushed
    /// data for any capacity/row-count combination.
    #[test]
    fn push_read_roundtrip(
        capacity in 1usize..64,
        pushes in 1usize..200,
        obs_dim in 1usize..24,
    ) {
        let layouts = vec![TransitionLayout::new(obs_dim, 3); 2];
        let mut replay = MultiAgentReplay::new(&layouts, capacity);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }
        prop_assert_eq!(replay.len(), pushes.min(capacity));
        // The slot for time t (if still stored) is t % capacity.
        let newest = pushes - 1;
        let slot = newest % capacity;
        let got = replay.buffer(0).transition(slot);
        prop_assert_eq!(got.reward, (newest * 10) as f32);
    }

    /// Every sampler's plan stays within bounds and fills the batch for
    /// arbitrary buffer lengths.
    #[test]
    fn plans_always_in_bounds(
        len in 64usize..4096,
        batch_pow in 3u32..9, // 8..=256, powers of two so locality divides
        seed in any::<u64>(),
    ) {
        let batch = 1usize << batch_pow;
        prop_assume!(batch <= len);
        let mut rng = StdRng::seed_from_u64(seed);
        for cfg in [
            SamplerConfig::Uniform,
            SamplerConfig::Locality { neighbors: 8 },
            SamplerConfig::Per,
            SamplerConfig::IpLocality,
        ] {
            let mut sampler = cfg.build(len);
            if cfg.is_prioritized() {
                for slot in 0..len {
                    sampler.observe_push(slot);
                }
            }
            let plan = sampler.plan(len, batch, &mut rng).unwrap();
            prop_assert_eq!(plan.batch_len(), batch);
            for idx in plan.flatten() {
                prop_assert!(idx < len, "{:?} produced oob index {}", cfg, idx);
            }
            if let Some(w) = plan.weights {
                prop_assert_eq!(w.len(), batch);
                prop_assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0 + 1e-6));
            }
        }
    }

    /// The interleaved layout agrees with the per-agent layout on every
    /// plan, for arbitrary pushes (including ring wraparound).
    #[test]
    fn layout_equivalence(
        capacity in 8usize..64,
        pushes in 8usize..150,
        indices in proptest::collection::vec(0usize..8, 1..32),
    ) {
        let layouts = vec![TransitionLayout::new(5, 3); 3];
        let mut replay = MultiAgentReplay::new(&layouts, capacity);
        let mut store = InterleavedStore::new(&layouts, capacity);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..3).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
            store.push_step(&step).unwrap();
        }
        let len = replay.len();
        let idx: Vec<usize> = indices.into_iter().map(|i| i % len).collect();
        let plan = SamplePlan::from_indices(&idx);
        let a = replay.sample(&plan).unwrap();
        let b = store.sample(&plan).unwrap();
        prop_assert_eq!(a.agents, b.agents);
    }

    /// Sum-tree invariant: the root always equals the sum of the leaves,
    /// and prefix lookup lands in the owning leaf's interval.
    #[test]
    fn sumtree_invariants(
        updates in proptest::collection::vec((0usize..32, 0.0f64..100.0), 1..100),
        probe in 0.0f64..1.0,
    ) {
        let mut tree = SumTree::new(32);
        let mut leaves = [0.0f64; 32];
        for (i, p) in updates {
            tree.update(i, p);
            leaves[i] = p;
        }
        let total: f64 = leaves.iter().sum();
        prop_assert!((tree.total() - total).abs() < 1e-6 * total.max(1.0));
        if total > 0.0 {
            let target = probe * total;
            let leaf = tree.find_prefix(target);
            let before: f64 = leaves[..leaf].iter().sum();
            prop_assert!(target >= before - 1e-9);
            prop_assert!(target < before + leaves[leaf] + 1e-6 * total);
        }
    }

    /// Snapshot decoding is total: flipping arbitrary bytes in a valid
    /// snapshot yields Ok or a structured error, never a panic or runaway
    /// allocation.
    #[test]
    fn snapshot_decode_survives_corruption(
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..16),
        pushes in 1usize..20,
    ) {
        use marl_repro::core::snapshot::{decode_replay, encode_replay};
        let layouts = vec![TransitionLayout::new(4, 2); 2];
        let mut replay = MultiAgentReplay::new(&layouts, 32);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }
        let good = encode_replay(&replay);
        let mut bad = good.to_vec();
        for (pos, byte) in flips {
            let i = pos % bad.len();
            bad[i] = byte;
        }
        // Must terminate without panicking; content equality only required
        // when the bytes happen to still be valid.
        let _ = decode_replay(bytes::Bytes::from(bad));
    }

    /// With V2 framing (CRC-32 over the body), *every* single-bit flip in
    /// a snapshot is detected: decode returns a structured error and
    /// never silently loads corrupted transitions.
    #[test]
    fn snapshot_single_bit_flip_is_detected(
        pos in 0.0f64..1.0,
        bit in 0u8..8,
        pushes in 1usize..20,
    ) {
        use marl_repro::core::snapshot::{decode_replay, encode_replay};
        let layouts = vec![TransitionLayout::new(4, 2); 2];
        let mut replay = MultiAgentReplay::new(&layouts, 32);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }
        let mut bad = encode_replay(&replay).to_vec();
        let i = ((bad.len() - 1) as f64 * pos) as usize;
        bad[i] ^= 1 << bit;
        prop_assert!(decode_replay(bytes::Bytes::from(bad)).is_err());
    }

    /// Truncating a snapshot anywhere before its end is always rejected —
    /// a torn write can never decode into a shorter-but-plausible buffer.
    #[test]
    fn snapshot_truncation_is_detected(cut in 0.0f64..1.0, pushes in 1usize..20) {
        use marl_repro::core::snapshot::{decode_replay, encode_replay};
        let layouts = vec![TransitionLayout::new(4, 2); 2];
        let mut replay = MultiAgentReplay::new(&layouts, 32);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }
        let good = encode_replay(&replay).to_vec();
        let len = ((good.len() - 1) as f64 * cut) as usize;
        prop_assert!(decode_replay(bytes::Bytes::from(good[..len].to_vec())).is_err());
    }

    /// `deinterleave` is the exact inverse of `reorganize_from` for every
    /// reachable ring state — partially filled, exactly full, and wrapped
    /// with the write cursor at an arbitrary slot — across agent counts
    /// and heterogeneous row widths. The checkpoint path leans on this
    /// inverse (an interleaved trainer snapshots through the common
    /// per-agent format), so a mismatch at a wrap boundary would silently
    /// corrupt resumed runs.
    #[test]
    fn reorganize_then_deinterleave_is_identity(
        agents in 1usize..5,
        obs_dim in 1usize..6,
        capacity in 2usize..32,
        wraps in 0usize..3,
        offset in 0usize..64,
    ) {
        let layouts: Vec<TransitionLayout> = (0..agents)
            // Heterogeneous widths: agent a's rows are wider by a.
            .map(|a| TransitionLayout::new(obs_dim + a, 2))
            .collect();
        let mut replay = MultiAgentReplay::new(&layouts, capacity);
        // Land the cursor anywhere: 0, 1, or 2 full laps plus a partial one.
        let pushes = (capacity * wraps + offset % capacity).max(1);
        for t in 0..pushes {
            let step: Vec<Transition> =
                (0..agents).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }

        let (store, report) = InterleavedStore::reorganize_from(&replay);
        prop_assert_eq!(report.rows, replay.len());
        let back = store.deinterleave().unwrap();

        prop_assert_eq!(back.agent_count(), replay.agent_count());
        for a in 0..replay.agent_count() {
            let (orig, rt) = (replay.buffer(a), back.buffer(a));
            prop_assert_eq!(rt.len(), orig.len(), "agent {} length", a);
            prop_assert_eq!(rt.capacity(), orig.capacity(), "agent {} capacity", a);
            prop_assert_eq!(rt.next_slot(), orig.next_slot(), "agent {} cursor", a);
            prop_assert_eq!(rt.raw_rows(), orig.raw_rows(), "agent {} rows", a);
        }
    }

    /// The identity also holds after the store keeps running: pushes
    /// after the reshape must land in the same slots the per-agent rings
    /// would have used, so the two layouts stay deinterleave-equal
    /// forever, not just at the handoff.
    #[test]
    fn post_reshape_pushes_track_the_per_agent_rings(
        capacity in 2usize..16,
        prefill in 1usize..40,
        extra in 1usize..24,
    ) {
        let layouts = vec![TransitionLayout::new(3, 2); 2];
        let mut replay = MultiAgentReplay::new(&layouts, capacity);
        for t in 0..prefill {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            replay.push_step(&step).unwrap();
        }
        let (mut store, _) = InterleavedStore::reorganize_from(&replay);
        for t in prefill..prefill + extra {
            let step: Vec<Transition> =
                (0..2).map(|a| transition(&layouts[a], (t * 10 + a) as f32)).collect();
            let slot = store.push_step(&step).unwrap();
            prop_assert_eq!(slot, replay.push_step(&step).unwrap(), "slot at t={}", t);
        }
        let back = store.deinterleave().unwrap();
        for a in 0..2 {
            prop_assert_eq!(back.buffer(a).raw_rows(), replay.buffer(a).raw_rows());
            prop_assert_eq!(back.buffer(a).next_slot(), replay.buffer(a).next_slot());
        }
    }

    /// Transition serialization roundtrips for arbitrary payloads.
    #[test]
    fn transition_row_roundtrip(
        obs in proptest::collection::vec(-1e6f32..1e6, 1..32),
        action in proptest::collection::vec(0.0f32..1.0, 1..8),
        reward in -1e6f32..1e6,
        done in prop::bool::ANY,
    ) {
        let layout = TransitionLayout::new(obs.len(), action.len());
        let t = Transition {
            next_obs: obs.iter().map(|x| x * 0.5).collect(),
            obs,
            action,
            reward,
            done: if done { 1.0 } else { 0.0 },
        };
        let mut row = vec![0.0; layout.row_width()];
        t.write_row(&layout, &mut row);
        prop_assert_eq!(Transition::from_row(&layout, &row), t);
    }
}
