//! End-to-end determinism contract of the parallel update pipeline: for a
//! fixed seed, `update_threads = 1` and `update_threads = 4` must produce
//! bitwise-identical episode rewards and checkpoint weights.

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};

/// Trains a short fixed-seed run and returns the reward curve (as raw
/// bits) plus the serialized agent states (weights, targets, optimizer
/// moments — everything except the config, which legitimately differs in
/// its `update_threads` field).
fn run(algorithm: Algorithm, threads: usize) -> (Vec<u32>, String) {
    let mut cfg = TrainConfig::paper_defaults(algorithm, Task::CooperativeNavigation, 3)
        .with_episodes(4)
        .with_batch_size(32)
        .with_buffer_capacity(4096)
        .with_update_threads(threads)
        .with_seed(7);
    cfg.warmup = 40;
    cfg.update_every = 20;
    let mut trainer = Trainer::new(cfg).expect("config is valid");
    let report = trainer.train().expect("training succeeds");
    assert!(report.update_iterations > 0, "run must actually update");
    let rewards: Vec<u32> = report.curve.values().iter().map(|r| r.to_bits()).collect();
    let agents = serde_json::to_string(&trainer.checkpoint().agents).expect("serializable");
    (rewards, agents)
}

#[test]
fn maddpg_update_threads_are_bitwise_equivalent() {
    let (rewards_serial, agents_serial) = run(Algorithm::Maddpg, 1);
    let (rewards_pool, agents_pool) = run(Algorithm::Maddpg, 4);
    assert_eq!(rewards_serial, rewards_pool, "reward curves diverged");
    assert_eq!(agents_serial, agents_pool, "checkpoint weights diverged");
}

#[test]
fn matd3_update_threads_are_bitwise_equivalent() {
    // MATD3 additionally exercises the per-agent target-noise RNG
    // streams and the delayed policy/target updates.
    let (rewards_serial, agents_serial) = run(Algorithm::Matd3, 1);
    let (rewards_pool, agents_pool) = run(Algorithm::Matd3, 4);
    assert_eq!(rewards_serial, rewards_pool, "reward curves diverged");
    assert_eq!(agents_serial, agents_pool, "checkpoint weights diverged");
}
