//! Cross-process tracing end to end over the lockstep loopback: a
//! traced learner and a traced worker each drain their own Chrome
//! trace, the fleet merger combines them, and every worker `steps-send`
//! flow pairs with exactly one learner `steps-ingest` flow in the
//! merged timeline. Also pins the bitwise guarantee: attaching tracing
//! to both sides of the wire changes nothing about training.

use marl_repro::algo::{Algorithm, Task, TrainConfig};
use marl_repro::dist::{
    loopback_pair, run_worker_traced, Backoff, DistError, Learner, LearnerOptions, Transport,
};
use marl_repro::obs::fleet::{merge_chrome_traces, ProcessTrace};
use marl_repro::obs::{KernelTally, SnapshotContext, Telemetry, TelemetryConfig};
use marl_repro::perf::phase::PhaseProfile;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("marl-fleet-trace-{}-{name}", std::process::id()))
}

fn config() -> TrainConfig {
    let mut c = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
        .with_episodes(6)
        .with_seed(9);
    // Same short-run warmup policy as the marl-learner binary, so the
    // run performs updates (and therefore Params broadcasts).
    c.warmup = (2 * c.batch_size).clamp(c.batch_size, c.buffer_capacity / 2).max(c.batch_size);
    c
}

fn trace_telemetry(path: &Path, process: &str) -> Arc<Telemetry> {
    Arc::new(
        Telemetry::new(&TelemetryConfig {
            trace_out: Some(path.to_path_buf()),
            process_name: Some(process.to_string()),
            ..TelemetryConfig::default()
        })
        .expect("telemetry opens"),
    )
}

/// One lockstep run over the in-process loopback; with `traced`, both
/// sides carry telemetry. Returns the learner's end-of-run checkpoint
/// (serialized) and, when traced, the two trace files' contents.
fn lockstep(traced: bool, tag: &str) -> (String, Option<(String, String)>) {
    let learner_path = tmp(&format!("{tag}-learner.trace.json"));
    let worker_path = tmp(&format!("{tag}-worker.trace.json"));
    let learner_tel = traced.then(|| trace_telemetry(&learner_path, "learner"));
    let worker_tel = traced.then(|| trace_telemetry(&worker_path, "worker-0"));

    let mut learner = Learner::new(config(), LearnerOptions::default()).expect("learner");
    if let Some(t) = &learner_tel {
        learner.trainer_mut().attach_telemetry(Arc::clone(t));
    }
    let (mut learner_end, worker_end) = loopback_pair(1024, Duration::from_secs(10));
    let wt = worker_tel.clone();
    let handle = std::thread::spawn(move || {
        let mut slot = Some(worker_end);
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), 0);
        run_worker_traced(
            0,
            move || {
                slot.take()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .ok_or(DistError::Disconnected)
            },
            &mut backoff,
            1,
            false,
            wt,
        )
    });
    learner.serve_lockstep(&mut learner_end).expect("lockstep serves");
    let (stats, result) = handle.join().expect("worker thread");
    result.expect("worker runs");
    if traced {
        assert!(stats.env_steps > 0, "traced worker reports progress");
    }

    let profile = PhaseProfile::new();
    let ctx = SnapshotContext { episode: 6, profile: &profile, kernels: KernelTally::default() };
    for t in learner_tel.iter().chain(worker_tel.iter()) {
        t.finish(&ctx);
    }
    let ckpt = serde_json::to_string(&learner.trainer().checkpoint()).expect("serializes");
    let traces = traced.then(|| {
        let l = std::fs::read_to_string(&learner_path).expect("learner trace");
        let w = std::fs::read_to_string(&worker_path).expect("worker trace");
        let _ = std::fs::remove_file(&learner_path);
        let _ = std::fs::remove_file(&worker_path);
        (l, w)
    });
    (ckpt, traces)
}

/// Flow ids of every `ph:"s"` (flow-start) event in a trace.
fn flow_start_ids(trace: &str) -> Vec<u64> {
    let mut ids = Vec::new();
    let mut rest = trace;
    while let Some(at) = rest.find("\"ph\":\"s\",\"id\":") {
        rest = &rest[at + "\"ph\":\"s\",\"id\":".len()..];
        let end = rest.find(',').expect("id is followed by ts");
        ids.push(rest[..end].parse().expect("numeric flow id"));
    }
    ids
}

#[test]
fn traced_lockstep_is_bitwise_identical_to_untraced() {
    let (untraced, _) = lockstep(false, "plain");
    let (traced, _) = lockstep(true, "traced");
    assert_eq!(
        untraced, traced,
        "attaching tracing to both sides of the wire must not change training"
    );
}

#[test]
fn every_worker_send_pairs_with_exactly_one_learner_ingest() {
    let (_ckpt, traces) = lockstep(true, "pairing");
    let (learner_trace, worker_trace) = traces.expect("traced run produces traces");

    let send_ids = flow_start_ids(&worker_trace);
    assert!(!send_ids.is_empty(), "worker recorded steps-send flows");

    let inputs = [
        ProcessTrace { name: "worker-0".into(), json: worker_trace, align_ns: 0 },
        ProcessTrace { name: "learner".into(), json: learner_trace, align_ns: 0 },
    ];
    let mut merged = Vec::new();
    let stats = merge_chrome_traces(&inputs, &mut merged).expect("merge");
    let merged = String::from_utf8(merged).expect("utf8");

    assert_eq!(stats.lanes, 2);
    assert!(
        stats.paired_flows >= send_ids.len(),
        "every send must pair: {} paired of {} sends",
        stats.paired_flows,
        send_ids.len()
    );
    for id in &send_ids {
        // The id shows up exactly twice: the worker-side `s` and the
        // learner-side `f` (the trailing comma keeps 42 from matching
        // 420).
        let needle = format!("\"id\":{id},");
        assert_eq!(
            merged.matches(&needle).count(),
            2,
            "flow {id} must appear once per side of the wire"
        );
    }
    // Both lanes survived the merge under their role names.
    assert!(merged.contains("\"args\":{\"name\":\"worker-0\"}"));
    assert!(merged.contains("\"args\":{\"name\":\"learner\"}"));
}
