//! Statistical oracle suite (conformance pillar 2).
//!
//! Large seeded draws from the prioritized samplers, checked against the
//! distributions their priorities *promise*:
//!
//! * the sum tree's prefix lookup draws leaves proportional to priority;
//! * `PerSampler::plan` preserves that proportionality end-to-end
//!   through stratification;
//! * the IP neighbor predictor emits run lengths 1/2/4 in exactly the
//!   proportions implied by the priority distribution;
//! * Lemma-1 IS weights de-bias prioritized draws back to the uniform
//!   ground truth — and the same estimate *without* the weights fails.
//!
//! All gates are chi-square statistics against a fixed Wilson–Hilferty
//! critical value (p = 0.999) or seeded tolerance bounds — seeds are
//! pinned, so every statistic is a pure function of the code under test
//! and the suite cannot flake.

use marl_conform::stats::{chi_square_critical, chi_square_statistic, Z_P999};
use marl_repro::core::sampler::{
    IpLocalityConfig, IpLocalitySampler, PerConfig, PerSampler, Sampler,
};
use marl_repro::core::sumtree::SumTree;
use marl_repro::env::registry::ScenarioId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-scenario reset oracle: every registered scenario draws agent
/// spawn positions uniformly (±1 per axis), so over many seeded resets
/// each agent's sign quadrant is visited in equal proportion. A scenario
/// that biased its spawn distribution — or consumed RNG draws in a
/// different order per reset — would shift the quadrant mix and trip the
/// chi-square gate.
#[test]
fn scenario_resets_spawn_agents_uniformly_across_quadrants() {
    const RESETS: usize = 4000;
    for id in ScenarioId::all() {
        let scenario = id.build(3);
        let mut world = scenario.make_world();
        let mut rng = StdRng::seed_from_u64(0x0DDB1A5E);
        let n = world.agents.len();
        let mut observed = vec![0u64; 4 * n];
        for _ in 0..RESETS {
            scenario.reset_world(&mut world, &mut rng);
            for (a, agent) in world.agents.iter().enumerate() {
                let q = usize::from(agent.state.position.x >= 0.0)
                    + 2 * usize::from(agent.state.position.y >= 0.0);
                observed[a * 4 + q] += 1;
            }
        }
        let expected = vec![RESETS as f64 / 4.0; 4 * n];
        let chi2 = chi_square_statistic(&observed, &expected);
        let crit = chi_square_critical(4 * n - n, Z_P999);
        assert!(
            chi2 < crit,
            "{id}: spawn quadrants drifted from uniform: chi2={chi2:.1} critical={crit:.1}"
        );
    }
}

/// Cooperative-reference goal oracle: each agent's private goal landmark
/// is drawn uniformly per episode, and the partner observes it as a
/// one-hot block. Reading that block straight out of the observations
/// over many resets must recover the uniform distribution over the L
/// landmarks — pinning both the draw and the obs wire format at once.
#[test]
fn cooperative_reference_goals_are_uniform_in_partner_observations() {
    const RESETS: usize = 3000;
    let mut env = ScenarioId::CooperativeReference.make_env(2, 25, 0x0C0FFEE);
    let landmarks = 3; // scaled(2) keeps max(n, 3) landmarks
    let mut observed = vec![0u64; landmarks];
    for _ in 0..RESETS {
        let obs = env.reset();
        // Agent 0 observes its partner's goal one-hot after [vel(2),
        // landmark_rel(2L)].
        let onehot = &obs[0][2 + 2 * landmarks..2 + 3 * landmarks];
        let goal = onehot.iter().position(|&x| x == 1.0).expect("goal one-hot present");
        assert_eq!(onehot.iter().sum::<f32>(), 1.0, "exactly one goal bit set");
        observed[goal] += 1;
    }
    let expected = vec![RESETS as f64 / landmarks as f64; landmarks];
    let chi2 = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(landmarks - 1, Z_P999);
    assert!(chi2 < crit, "goal draw drifted from uniform: chi2={chi2:.1} critical={crit:.1}");
}

/// Per-scenario reward oracle: seeded random play lands each scenario's
/// mean per-step reward in a band its reward function promises —
/// distance-cost scenarios are strictly negative, and every scenario
/// stays within loose magnitude bounds that a broken shaping term
/// (wrong sign, unclamped boundary penalty) would escape. Seeds are
/// pinned, so each statistic is a pure function of the scenario code.
#[test]
fn scenario_reward_means_sit_in_promised_bands() {
    const EPISODES: usize = 20;
    for id in ScenarioId::all() {
        let mut env = id.make_env(3, 25, 0xBEEF);
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let n = env.trained_agents();
        let (mut sum, mut steps) = (vec![0.0f64; n], 0u64);
        for _ in 0..EPISODES {
            env.reset();
            loop {
                let actions: Vec<usize> =
                    env.action_spaces().iter().map(|s| rng.gen_range(0..s.joint_count())).collect();
                let step = env.step(&actions).expect("step");
                for (s, r) in sum.iter_mut().zip(&step.rewards) {
                    *s += f64::from(*r);
                }
                steps += 1;
                if step.done {
                    break;
                }
            }
        }
        let means: Vec<f64> = sum.iter().map(|s| s / steps as f64).collect();
        for (a, m) in means.iter().enumerate() {
            assert!(
                m.abs() < 50.0,
                "{id}: agent {a} mean per-step reward {m:.2} escaped the sanity band"
            );
        }
        match id {
            // Pure distance costs: shared or per-agent, always ≤ 0.
            ScenarioId::CooperativeNavigation | ScenarioId::CooperativeReference => {
                for (a, m) in means.iter().enumerate() {
                    assert!(*m < 0.0, "{id}: agent {a} distance cost must be negative ({m:.2})");
                }
            }
            // Keep-away's good agents pay −dist(goal); under random play
            // they sit clearly below zero.
            ScenarioId::KeepAway => {
                let good = means.last().expect("good agent present");
                assert!(*good < 0.0, "keep-away good agent must pay distance cost ({good:.2})");
            }
            _ => {}
        }
    }
}

/// Raw sum-tree proportionality: `find_prefix` over uniformly drawn
/// prefixes visits each leaf in proportion to its priority.
#[test]
fn sum_tree_draws_match_leaf_priorities() {
    const LEAVES: usize = 64;
    const DRAWS: usize = 100_000;
    let mut tree = SumTree::new(LEAVES);
    // Known non-uniform priorities: leaf i gets 1 + (i mod 4).
    for i in 0..LEAVES {
        tree.update(i, 1.0 + (i % 4) as f64);
    }
    let total = tree.total();
    assert_eq!(total, (1 + 2 + 3 + 4) as f64 * (LEAVES / 4) as f64);

    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let mut observed = vec![0u64; LEAVES];
    for _ in 0..DRAWS {
        observed[tree.find_prefix(rng.gen_range(0.0..total))] += 1;
    }
    let expected: Vec<f64> = (0..LEAVES).map(|i| tree.priority(i) / total * DRAWS as f64).collect();
    let chi2 = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(LEAVES - 1, Z_P999);
    assert!(chi2 < crit, "sum-tree draw frequencies drifted: chi2={chi2:.1} critical={crit:.1}");
}

/// A PER config with exact arithmetic for oracle math: α = 1 (priorities
/// used as-is), ε = 0 (priority = |TD|), β pinned (no annealing).
fn exact_per(capacity: usize, beta: f64) -> PerConfig {
    let mut cfg = PerConfig::with_capacity(capacity);
    cfg.alpha = 1.0;
    cfg.epsilon = 0.0;
    cfg.beta = beta;
    cfg.beta_final = beta;
    cfg.beta_anneal_plans = 0;
    cfg
}

/// End-to-end `PerSampler::plan` frequencies: stratified proportional
/// sampling still draws each slot with probability `p_i / Σp` when
/// counts are aggregated over the batch (the strata partition the mass).
#[test]
fn per_sampler_empirical_frequencies_match_priorities() {
    const N: usize = 64;
    let mut s = PerSampler::new(exact_per(N, 1.0));
    for i in 0..N {
        s.observe_push(i);
    }
    // Three priority classes: |TD| of 1, 2, or 4 ⇒ masses 32·1 + 16·2 +
    // 16·4 = 128, slot probabilities 1/128, 2/128, 4/128.
    let tds: Vec<f32> = (0..N)
        .map(|i| {
            if i < 32 {
                1.0
            } else if i < 48 {
                2.0
            } else {
                4.0
            }
        })
        .collect();
    let indices: Vec<usize> = (0..N).collect();
    s.update_priorities(&indices, &tds);

    const PLANS: usize = 200;
    const BATCH: usize = 32;
    let mut rng = StdRng::seed_from_u64(0xBEE);
    let mut observed = vec![0u64; N];
    for _ in 0..PLANS {
        for i in s.plan(N, BATCH, &mut rng).unwrap().flatten() {
            observed[i] += 1;
        }
    }
    let draws = (PLANS * BATCH) as f64;
    let expected: Vec<f64> = (0..N).map(|i| tds[i] as f64 / 128.0 * draws).collect();
    let chi2 = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(N - 1, Z_P999);
    assert!(chi2 < crit, "PER draw frequencies drifted: chi2={chi2:.1} critical={crit:.1}");
}

/// The IP neighbor predictor's run-length mix: with three priority
/// classes placed around the thresholds, references land in the 1-, 2-,
/// and 4-neighbor classes in proportion to each class's priority-mass
/// share.
#[test]
fn ip_run_length_proportions_match_the_priority_distribution() {
    const N: usize = 512;
    let mut cfg = IpLocalityConfig::with_capacity(N);
    cfg.per = exact_per(N, 1.0);
    let mut s = IpLocalitySampler::new(cfg);
    for i in 0..N {
        s.observe_push(i);
    }
    // |TD| classes 1 / 2 / 10 over 400 / 62 / 50 slots: total mass
    // 400 + 124 + 500 = 1024, mean 2. Normalized priority = p / (2·mean)
    // = p/4 ⇒ 0.25 (< T1 → 1 neighbor), 0.5 (→ 2), 2.5 clamped to 1.0
    // (→ 4). Expected reference shares = mass shares.
    let tds: Vec<f32> = (0..N)
        .map(|i| {
            if i < 400 {
                1.0
            } else if i < 462 {
                2.0
            } else {
                10.0
            }
        })
        .collect();
    let indices: Vec<usize> = (0..N).collect();
    s.update_priorities(&indices, &tds);

    const PLANS: usize = 500;
    const BATCH: usize = 256;
    let mut rng = StdRng::seed_from_u64(0xCAB);
    let mut observed = [0u64; 3]; // run lengths 1, 2, 4
    for _ in 0..PLANS {
        let plan = s.plan(N, BATCH, &mut rng).unwrap();
        // The final segment of a plan may be truncated to fit the batch
        // (and only it can be — a clamped run always fills the batch), so
        // tally interior segments, whose lengths are the predictor's.
        for seg in &plan.segments[..plan.segments.len() - 1] {
            match seg.len {
                1 => observed[0] += 1,
                2 => observed[1] += 1,
                4 => observed[2] += 1,
                other => panic!("interior run length {other} is not a predictor class"),
            }
        }
    }
    let refs: u64 = observed.iter().sum();
    assert!(refs > 10_000, "draw more references for a stable gate (got {refs})");
    let shares = [400.0 / 1024.0, 124.0 / 1024.0, 500.0 / 1024.0];
    let expected: Vec<f64> = shares.iter().map(|p| p * refs as f64).collect();
    let chi2 = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(2, Z_P999);
    assert!(
        chi2 < crit,
        "run-length mix drifted: observed={observed:?} chi2={chi2:.1} critical={crit:.1}"
    );
}

/// Lemma 1 over PER draws: the IS-weighted estimator of a fixed buffer's
/// mean recovers the uniform ground truth; the unweighted estimator is
/// biased by construction and must fail the same bound.
#[test]
fn lemma1_weights_debias_per_draws() {
    const N: usize = 256;
    let mut s = PerSampler::new(exact_per(N, 1.0));
    for i in 0..N {
        s.observe_push(i);
    }
    // "Replay buffer" of values v_i = i, uniform mean 127.5. Priorities
    // correlate with value (the adversarial case): top-quarter slots get
    // 50× the mass, so unweighted draws over-represent large values.
    let tds: Vec<f32> = (0..N).map(|i| if i < 192 { 0.1 } else { 5.0 }).collect();
    let indices: Vec<usize> = (0..N).collect();
    s.update_priorities(&indices, &tds);
    let truth = (0..N).map(|i| i as f64).sum::<f64>() / N as f64; // 127.5

    const PLANS: usize = 400;
    const BATCH: usize = 64;
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let (mut weighted_sum, mut unweighted_sum, mut draws) = (0.0f64, 0.0f64, 0u64);
    // With β = 1 the stored weight is (1/(N·P(i)))/w_max, so scaling by
    // w_max recovers the exact Lemma-1 correction 1/(N·P(i)), which makes
    // E[w·v] the uniform mean.
    let w_max = s.core().max_weight(N);
    for _ in 0..PLANS {
        let plan = s.plan(N, BATCH, &mut rng).unwrap();
        let idx = plan.flatten();
        let w = plan.weights.as_ref().expect("PER plans are weighted");
        for (&i, &wi) in idx.iter().zip(w) {
            weighted_sum += wi as f64 * w_max * i as f64;
            unweighted_sum += i as f64;
            draws += 1;
        }
    }
    let weighted = weighted_sum / draws as f64;
    let unweighted = unweighted_sum / draws as f64;
    // ~25.6 k draws, estimator SE ≈ 2.1 ⇒ ±10 is a ≈5σ deterministic gate.
    assert!(
        (weighted - truth).abs() < 10.0,
        "weighted estimate {weighted:.2} missed the uniform truth {truth}"
    );
    assert!(
        (unweighted - truth).abs() > 50.0,
        "unweighted estimate {unweighted:.2} should be badly biased (truth {truth})"
    );
}

/// Lemma 1 over IP-locality draws, per reference: each drawn reference
/// carries weight 1/(N·P(ref)) (its neighbors inherit it), so the
/// weighted per-reference estimator recovers the uniform mean even
/// though references are drawn proportional to priority.
#[test]
fn lemma1_weights_debias_ip_reference_draws() {
    const N: usize = 256;
    let mut cfg = IpLocalityConfig::with_capacity(N);
    cfg.per = exact_per(N, 1.0);
    let mut s = IpLocalitySampler::new(cfg);
    for i in 0..N {
        s.observe_push(i);
    }
    // High priority on the *low-value* quarter (slots 0..64) so (a) the
    // unweighted reference mean is biased low, and (b) 4-neighbor runs
    // never start near the buffer end, so `Segment::start` is exactly
    // the drawn reference for every segment.
    let tds: Vec<f32> = (0..N).map(|i| if i < 64 { 5.0 } else { 0.1 }).collect();
    let indices: Vec<usize> = (0..N).collect();
    s.update_priorities(&indices, &tds);
    let truth = (0..N).map(|i| i as f64).sum::<f64>() / N as f64; // 127.5

    const PLANS: usize = 1000;
    const BATCH: usize = 64;
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let (mut weighted_sum, mut unweighted_sum, mut refs) = (0.0f64, 0.0f64, 0u64);
    let w_max = s.core().max_weight(N);
    for _ in 0..PLANS {
        let plan = s.plan(N, BATCH, &mut rng).unwrap();
        let w = plan.weights.as_ref().expect("IP plans are weighted");
        let mut offset = 0;
        for seg in &plan.segments {
            let v = seg.start as f64;
            weighted_sum += w[offset] as f64 * w_max * v;
            unweighted_sum += v;
            refs += 1;
            offset += seg.len;
        }
    }
    let weighted = weighted_sum / refs as f64;
    let unweighted = unweighted_sum / refs as f64;
    // ~17 k references, SE ≈ 4 ⇒ ±20 is a ≈5σ deterministic gate.
    assert!(
        (weighted - truth).abs() < 20.0,
        "weighted reference estimate {weighted:.2} missed the uniform truth {truth}"
    );
    assert!(
        (unweighted - truth).abs() > 50.0,
        "unweighted reference estimate {unweighted:.2} should be badly biased (truth {truth})"
    );
}
