//! Fast checks of the *shapes* the paper reports: locality reduces random
//! jumps and simulated misses; sampling traffic scales O(N²·B); the
//! neighbor predictor follows the priority thresholds.

use marl_repro::core::config::SamplerConfig;
use marl_repro::core::stats::{iteration_stats, plan_stats};
use marl_repro::core::transition::TransitionLayout;
use marl_repro::perf::platform::PlatformSpec;
use marl_repro::perf::trace::{BufferGeometry, GatherSegment, MemoryModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 200_000; // 200k x ~600B rows = 120 MB per buffer, still far beyond LLC
const BATCH: usize = 1024;

fn segments(cfg: SamplerConfig, rng: &mut StdRng) -> Vec<GatherSegment> {
    let mut sampler = cfg.build(ROWS);
    if cfg.is_prioritized() {
        for slot in 0..ROWS {
            sampler.observe_push(slot);
        }
    }
    let plan = sampler.plan(ROWS, BATCH, rng).unwrap();
    plan.segments.iter().map(|s| GatherSegment { start_row: s.start, rows: s.len }).collect()
}

fn simulated_misses(cfg: SamplerConfig, agents: usize) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(0);
    let layout = TransitionLayout::new(72, 5);
    let geometry = BufferGeometry::layout(agents, ROWS, layout.row_bytes());
    let mut model = MemoryModel::new(&PlatformSpec::ryzen_3975wx());
    for _ in 0..agents {
        let segs = segments(cfg, &mut rng);
        for geom in &geometry {
            model.replay_gather(geom, &segs);
        }
    }
    let c = model.counters();
    (c.cache_misses, c.dtlb_misses)
}

#[test]
fn locality_reduces_simulated_misses() {
    let (base_llc, base_tlb) = simulated_misses(SamplerConfig::Uniform, 3);
    let (loc_llc, loc_tlb) = simulated_misses(SamplerConfig::LocalityN64R16, 3);
    assert!(
        loc_llc < base_llc,
        "locality LLC misses {loc_llc} should undercut baseline {base_llc}"
    );
    assert!(loc_tlb < base_tlb, "locality dTLB misses should shrink");
    // The reduction should be substantial (paper reports double-digit %).
    let reduction = 1.0 - loc_llc as f64 / base_llc as f64;
    assert!(reduction > 0.10, "LLC reduction only {:.1}%", reduction * 100.0);
}

#[test]
fn miss_counts_grow_superlinearly_with_agents() {
    let (m3, _) = simulated_misses(SamplerConfig::Uniform, 3);
    let (m6, _) = simulated_misses(SamplerConfig::Uniform, 6);
    let ratio = m6 as f64 / m3 as f64;
    assert!(ratio > 2.0, "expected super-linear growth, got {ratio:.2}x");
}

#[test]
fn sampling_traffic_is_quadratic_in_agents() {
    let layout = TransitionLayout::new(72, 5);
    let mut rng = StdRng::seed_from_u64(1);
    let mut sampler = SamplerConfig::Uniform.build(ROWS);
    let plan = sampler.plan(ROWS, BATCH, &mut rng).unwrap();
    let per = plan_stats(&plan, &layout);
    let s3 = iteration_stats(&per, 3);
    let s24 = iteration_stats(&per, 24);
    assert_eq!(s24.gathers, 64 * s3.gathers); // 24² = 576 = 64 × 3²
    assert_eq!(s24.bytes_read, 64 * s3.bytes_read);
    assert_eq!(s24.random_jumps, 64 * s3.random_jumps);
}

#[test]
fn plan_jump_counts_match_paper_operating_points() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut uniform = SamplerConfig::Uniform.build(ROWS);
    assert_eq!(uniform.plan(ROWS, BATCH, &mut rng).unwrap().random_jumps(), 1024);
    let mut n16 = SamplerConfig::LocalityN16R64.build(ROWS);
    assert_eq!(n16.plan(ROWS, BATCH, &mut rng).unwrap().random_jumps(), 64);
    let mut n64 = SamplerConfig::LocalityN64R16.build(ROWS);
    assert_eq!(n64.plan(ROWS, BATCH, &mut rng).unwrap().random_jumps(), 16);
}

#[test]
fn ip_locality_jumps_fall_between_per_and_pure_locality() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut per = SamplerConfig::Per.build(ROWS);
    let mut ip = SamplerConfig::IpLocality.build(ROWS);
    for slot in 0..ROWS {
        per.observe_push(slot);
        ip.observe_push(slot);
    }
    let per_jumps = per.plan(ROWS, BATCH, &mut rng).unwrap().random_jumps();
    let ip_jumps = ip.plan(ROWS, BATCH, &mut rng).unwrap().random_jumps();
    assert_eq!(per_jumps, 1024);
    assert!(ip_jumps < per_jumps, "IP must jump less than PER");
    assert!(ip_jumps >= 16, "IP keeps more randomness than one giant run");
}

#[test]
fn bigger_caches_miss_less_on_identical_traces() {
    // Cross-platform sanity: the i7's smaller L3 must not outperform the
    // Ryzen's larger slice on the same trace.
    let mut rng = StdRng::seed_from_u64(4);
    let layout = TransitionLayout::new(72, 5);
    let geometry = BufferGeometry::layout(3, ROWS, layout.row_bytes());
    let run = |platform: &PlatformSpec, rng: &mut StdRng| {
        let mut model = MemoryModel::new(platform);
        let mut sampler = SamplerConfig::Uniform.build(ROWS);
        for _ in 0..3 {
            let plan = sampler.plan(ROWS, BATCH, rng).unwrap();
            let segs: Vec<GatherSegment> = plan
                .segments
                .iter()
                .map(|s| GatherSegment { start_row: s.start, rows: s.len })
                .collect();
            for geom in &geometry {
                model.replay_gather(geom, &segs);
            }
        }
        model.counters()
    };
    let ryzen = run(&PlatformSpec::ryzen_3975wx(), &mut rng);
    let mut rng2 = StdRng::seed_from_u64(4);
    let i7 = run(&PlatformSpec::i7_9700k(), &mut rng2);
    assert!(i7.cache_misses >= ryzen.cache_misses);
    assert!(i7.dtlb_misses >= ryzen.dtlb_misses);
}
