//! Fault-tolerance of the distributed actor–learner runtime.
//!
//! Integration-level drills against `marl-dist`'s supervision layer:
//! free-running fleets over the loopback, heartbeat-silence death
//! detection with restart requests, stale-epoch quarantine with a
//! parameter refresh, and the full process-level chaos drill — real
//! `marl-worker` child processes over a Unix socket, one SIGKILLed
//! mid-episode, restarted under supervision, and re-admitted while the
//! learner keeps training.

use marl_repro::algo::{Algorithm, Task, TrainConfig};
use marl_repro::core::transition::Transition;
use marl_repro::core::SamplerConfig;
use marl_repro::dist::wire::{EpisodeEnd, Hello, Msg, Steps};
use marl_repro::dist::{
    loopback_pair, run_worker, Acceptor, Backoff, ChaosPlan, DistError, Endpoint, Learner,
    LearnerOptions, RestartHandler, Transport, UnixAcceptor, WorkerPool,
};
use marl_repro::nn::kernels::KernelChoice;
use std::time::Duration;

mod common;

fn dist_config(episodes: usize, seed: u64) -> TrainConfig {
    let mut c = common::seeded_config(
        Algorithm::Maddpg,
        Task::PredatorPrey,
        3,
        SamplerConfig::Uniform,
        episodes,
        32,
        2048,
        seed,
    )
    .with_kernel(KernelChoice::Scalar);
    c.update_every = 10;
    c
}

fn fast_opts() -> LearnerOptions {
    LearnerOptions {
        recv_timeout: Duration::from_millis(5),
        stall_timeout: Duration::from_secs(30),
        ..Default::default()
    }
}

/// Test-side acceptor: a queue of pre-connected loopback ends.
struct VecAcceptor(Vec<Box<dyn Transport>>);

impl Acceptor for VecAcceptor {
    fn try_accept(&mut self) -> Result<Option<Box<dyn Transport>>, DistError> {
        Ok(if self.0.is_empty() { None } else { Some(self.0.remove(0)) })
    }
}

/// Records restart requests instead of spawning anything.
#[derive(Default)]
struct RecordingRestarts(Vec<u32>);

impl RestartHandler for RecordingRestarts {
    fn restart(&mut self, worker_id: u32) -> bool {
        self.0.push(worker_id);
        true
    }
}

fn spawn_loopback_worker(
    worker_id: u32,
) -> (
    Box<dyn Transport>,
    std::thread::JoinHandle<Result<marl_repro::dist::worker::RunOutcome, DistError>>,
) {
    let (learner_end, worker_end) = loopback_pair(256, Duration::from_secs(5));
    let handle = std::thread::spawn(move || {
        let mut slot = Some(worker_end);
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(5), 0);
        run_worker(
            worker_id,
            move || {
                slot.take()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .ok_or(DistError::Disconnected)
            },
            &mut backoff,
            1,
        )
    });
    (Box::new(learner_end), handle)
}

/// A two-worker free-running fleet over the loopback reaches the episode
/// target with zero quarantines, and the learner performed updates.
#[test]
fn free_running_loopback_fleet_reaches_target() {
    let cfg = dist_config(6, 11);
    let mut learner = Learner::new(cfg, fast_opts()).expect("learner builds");
    let (conn0, h0) = spawn_loopback_worker(0);
    let (conn1, h1) = spawn_loopback_worker(1);
    let mut acceptor = VecAcceptor(Vec::new());
    learner.serve_free(vec![conn0, conn1], &mut acceptor, None).expect("serve completes");
    assert!(learner.episodes_recorded() >= 6);
    assert!(learner.epoch() >= 1, "no updates ran");
    assert_eq!(learner.supervisor().alive(), 2);
    assert_eq!(learner.supervisor().total_quarantined(), 0);
    // Workers either completed their budget or were waved off; a worker
    // that raced the learner's shutdown reports its last transport error.
    let _ = h0.join().unwrap();
    let _ = h1.join().unwrap();
}

/// A worker that goes silent after admission is declared dead by
/// heartbeat silence and handed to the restart handler — while a healthy
/// worker keeps streaming and the learner keeps training to completion.
#[test]
fn silent_worker_is_declared_dead_and_restart_requested() {
    let cfg = dist_config(3, 12);
    let mut opts = fast_opts();
    opts.supervisor.suspect_after = Duration::from_millis(30);
    opts.supervisor.dead_after = Duration::from_millis(80);
    let mut learner = Learner::new(cfg, opts).expect("learner builds");

    let (healthy_conn, healthy) = spawn_loopback_worker(0);
    // The silent worker: handshakes, then never sends another frame.
    let (mut silent_end, silent_learner_end) = {
        let (a, b) = loopback_pair(64, Duration::from_secs(5));
        (a, Box::new(b) as Box<dyn Transport>)
    };
    silent_end.send(&Msg::Hello(Hello { worker_id: 7, resume: false })).unwrap();

    let mut restarts = RecordingRestarts::default();
    let mut acceptor = VecAcceptor(Vec::new());
    learner
        .serve_free(vec![healthy_conn, silent_learner_end], &mut acceptor, Some(&mut restarts))
        .expect("serve completes");

    assert!(restarts.0.contains(&7), "restart handler never asked about the silent worker");
    assert!(learner.supervisor().total_restarts() >= 1);
    assert!(learner.episodes_recorded() >= 3, "healthy worker kept the run going");
    let _ = healthy.join().unwrap();
}

/// Builds `n` zeroed joint steps with the environment's exact
/// observation dimensions.
fn zero_steps(n: usize) -> Vec<Vec<Transition>> {
    let env = marl_repro::env::predator_prey(3, 25, 0);
    let dims: Vec<usize> = env.observation_spaces().iter().map(|s| s.dim).collect();
    (0..n)
        .map(|_| {
            dims.iter()
                .map(|&d| Transition {
                    obs: vec![0.0; d],
                    action: {
                        let mut a = vec![0.0; 5];
                        a[0] = 1.0;
                        a
                    },
                    reward: 0.0,
                    next_obs: vec![0.0; d],
                    done: 0.0,
                })
                .collect()
        })
        .collect()
}

/// A frame stamped with a parameter epoch older than the tolerance is
/// quarantined — dropped without ingestion, counted, and answered with a
/// fresh parameter broadcast instead of being trained on.
#[test]
fn stale_epoch_frame_is_quarantined_and_answered_with_refresh() {
    let cfg = dist_config(1, 13);
    let mut opts = fast_opts();
    opts.supervisor.max_epoch_lag = 0;
    let mut learner = Learner::new(cfg, opts).expect("learner builds");

    let (mut me, learner_end) = loopback_pair(64, Duration::from_secs(5));
    let speaker = std::thread::spawn(move || {
        me.send(&Msg::Hello(Hello { worker_id: 3, resume: false })).unwrap();
        let welcome = me.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(welcome, Msg::Welcome(_)));
        // 74 steps: past warmup 64 and update_every 10 ⇒ exactly one
        // update, advancing the learner to epoch 1.
        me.send(&Msg::Steps(Steps {
            worker_id: 3,
            epoch: 0,
            seq: 1,
            steps: zero_steps(74),
            rng: None,
            sync: false,
            ctx: None,
        }))
        .unwrap();
        // Now epoch 0 is stale (lag 0 tolerated): must be quarantined.
        me.send(&Msg::Steps(Steps {
            worker_id: 3,
            epoch: 0,
            seq: 2,
            steps: zero_steps(1),
            rng: None,
            sync: false,
            ctx: None,
        }))
        .unwrap();
        me.send(&Msg::EpisodeEnd(EpisodeEnd {
            worker_id: 3,
            mean_reward: 0.0,
            master_rng: [1, 2, 3, 4],
            env_rng: [5, 6, 7, 8],
            env_steps: 75,
            samples_since_update: 0,
            ctx: None,
        }))
        .unwrap();
        // Drain until the goodbye; count the parameter refreshes.
        let mut params = 0;
        loop {
            match me.recv_timeout(Duration::from_secs(10)) {
                Ok(Msg::Params(_)) => params += 1,
                Ok(Msg::Bye(_)) | Err(DistError::Disconnected) => break,
                Ok(_) => {}
                Err(DistError::Timeout { .. }) => {}
                Err(e) => panic!("speaker transport failed: {e}"),
            }
        }
        params
    });

    let mut acceptor = VecAcceptor(Vec::new());
    learner.serve_free(vec![Box::new(learner_end)], &mut acceptor, None).expect("serve completes");
    let params_seen = speaker.join().unwrap();

    assert_eq!(learner.supervisor().total_quarantined(), 1, "exactly the stale frame");
    assert_eq!(learner.epoch(), 1, "the stale frame must not have triggered training");
    assert_eq!(learner.episodes_recorded(), 1);
    // The post-update broadcast plus the quarantine refresh.
    assert!(params_seen >= 2, "expected broadcast + refresh, saw {params_seen}");
    assert_eq!(
        learner.supervisor().worker(3).expect("worker known").quarantined,
        1,
        "quarantine attributed to the offending worker"
    );
}

/// The full process-level chaos drill: two real `marl-worker` child
/// processes stream over a Unix socket; after the victim delivers three
/// step frames it is SIGKILLed mid-episode. The learner must keep
/// training on the survivor, declare the victim dead by heartbeat
/// silence, restart it through the pool, re-admit it with `resume`, and
/// still reach the episode target.
#[test]
fn sigkill_worker_is_restarted_and_run_completes() {
    let sock = std::env::temp_dir().join(format!("marl-dist-chaos-{}.sock", std::process::id()));
    // The episode target must keep the survivor busy well past the death
    // deadline, or the run can finish before the victim's silence is
    // noticed and no restart happens.
    let cfg = dist_config(60, 14);
    let mut opts = fast_opts();
    opts.supervisor.suspect_after = Duration::from_millis(50);
    opts.supervisor.dead_after = Duration::from_millis(150);
    opts.recv_timeout = Duration::from_millis(10);
    opts.stall_timeout = Duration::from_secs(60);
    let mut learner = Learner::new(cfg, opts).expect("learner builds");

    let mut acceptor = UnixAcceptor::bind(&sock).expect("bind socket");
    let mut pool = WorkerPool::new(
        std::path::PathBuf::from(env!("CARGO_BIN_EXE_marl-worker")),
        Endpoint::Unix(sock.clone()),
        2,
    )
    .with_chaos(ChaosPlan { victim: 1, after_frames: 3 });
    pool.spawn(0).expect("spawn worker 0");
    pool.spawn(1).expect("spawn worker 1");

    learner.serve_free(Vec::new(), &mut acceptor, Some(&mut pool)).expect("serve completes");
    pool.join_all(Duration::from_secs(5));

    assert!(pool.chaos_fired(), "the SIGKILL never fired");
    // At least one restart of the victim; the tight death deadline may
    // occasionally declare a busy worker dead a second time, which the
    // pool also handles (capped at max_restarts).
    assert!(pool.restart_count(1) >= 1, "the victim must be restarted");
    assert!(learner.episodes_recorded() >= 60);
    assert!(learner.supervisor().total_restarts() >= 1);
    assert!(
        learner.supervisor().total_reconnects() >= 1,
        "the restarted victim must be re-admitted"
    );
    assert!(learner.epoch() >= 1, "training must have continued through the failure");
    let _ = std::fs::remove_file(&sock);
}
