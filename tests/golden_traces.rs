//! Golden-trace regression suite (conformance pillar 1).
//!
//! Replays one fixed small configuration per algorithm × sampler ×
//! layout combination with an attached `UpdateTraceRecorder` and diffs
//! the recorded digest chain against the committed
//! `results/golden/*.trace` file. A mismatch names the first divergent
//! update step and digest field.
//!
//! Regenerate after an *intended* numeric change with
//! `MARL_BLESS=1 cargo test -q golden` (and record it in CHANGELOG.md —
//! CI enforces that pairing).

use marl_conform::golden;
use marl_repro::algo::{Algorithm, LayoutMode};
use marl_repro::core::SamplerConfig;

mod common;

const ALGORITHMS: [(Algorithm, &str); 2] =
    [(Algorithm::Maddpg, "maddpg"), (Algorithm::Matd3, "matd3")];
const SAMPLERS: [(SamplerConfig, &str); 4] = [
    (SamplerConfig::Uniform, "uniform"),
    (SamplerConfig::Per, "per"),
    (SamplerConfig::LocalityN16R64, "locality"),
    (SamplerConfig::IpLocality, "ip"),
];
const LAYOUTS: [(LayoutMode, &str); 2] =
    [(LayoutMode::PerAgent, "per_agent"), (LayoutMode::Interleaved, "interleaved")];

/// All 16 committed combinations, replayed and diffed (or re-blessed
/// under `MARL_BLESS=1`). One test so a bless run regenerates the whole
/// set atomically; failures accumulate so one report lists every
/// diverged combination.
#[test]
fn golden_traces_match_committed_digests() {
    let mut failures = Vec::new();
    for (algorithm, algo_tag) in ALGORITHMS {
        for (sampler, sampler_tag) in SAMPLERS {
            for (layout, layout_tag) in LAYOUTS {
                let name = format!("{algo_tag}_{sampler_tag}_{layout_tag}");
                let cfg = common::golden_config(algorithm, sampler, layout);
                let digests = golden::record_run(cfg).expect("training failed");
                assert!(!digests.is_empty(), "{name}: run recorded no updates");
                if let Err(report) =
                    golden::check_or_bless(&name, &golden::describe_config(&cfg), &digests)
                {
                    failures.push(report);
                }
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The vectorized-rollout golden: the 17th committed trace pins the
/// K = 8 engine (SoA physics, batched inference, per-world RNG streams)
/// on the scalar kernel, so any numeric drift in the multi-world path is
/// caught even though the 16 scalar-rollout goldens never exercise it.
/// Episodes = 8 with K = 8 means exactly one vectorized episode: 25
/// steps x 8 worlds x 3 agents = 600 samples past warmup 64 with
/// update_every 10 ⇒ a healthy digest chain.
#[test]
fn vectorized_k8_golden_trace_matches_committed_digest() {
    let cfg =
        common::golden_config(Algorithm::Maddpg, SamplerConfig::Uniform, LayoutMode::PerAgent)
            .with_num_envs(8)
            .with_episodes(8);
    let digests = golden::record_run(cfg).expect("training failed");
    assert!(!digests.is_empty(), "k8 run recorded no updates");
    if let Err(report) = golden::check_or_bless(
        "maddpg_uniform_per_agent_k8",
        &golden::describe_config(&cfg),
        &digests,
    ) {
        panic!("{report}");
    }
}

/// One golden per scenario × algorithm for the rest of the registered
/// MPE suite (the 16-combo matrix above already covers predator-prey and
/// the sampler/layout axes on it; cooperative-navigation is pinned by
/// the end-to-end suites). Communication scenarios exercise segmented
/// Gumbel heads and — for world-comm — heterogeneous per-agent action
/// widths through the whole update pipeline, so these traces pin exactly
/// the numerics the scalar matrix cannot reach.
#[test]
fn per_scenario_golden_traces_match_committed_digests() {
    use marl_repro::algo::Task;
    const SCENARIOS: [(Task, &str); 4] = [
        (Task::PhysicalDeception, "physical_deception"),
        (Task::KeepAway, "keep_away"),
        (Task::CooperativeReference, "cooperative_reference"),
        (Task::WorldComm, "world_comm"),
    ];
    let mut failures = Vec::new();
    for (task, tag) in SCENARIOS {
        for (algorithm, algo_tag) in ALGORITHMS {
            let name = format!("{algo_tag}_{tag}");
            let cfg = common::scenario_golden_config(algorithm, task);
            let digests = golden::record_run(cfg).expect("training failed");
            assert!(!digests.is_empty(), "{name}: run recorded no updates");
            if let Err(report) =
                golden::check_or_bless(&name, &golden::describe_config(&cfg), &digests)
            {
                failures.push(report);
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The vectorized comm golden: K = 8 worlds of cooperative-reference,
/// whose actions are movement ⊕ a 10-way utterance. This pins the SoA
/// comm gather/scatter lanes, the batched segmented exploration path,
/// and the per-world RNG streams together in one committed digest chain.
#[test]
fn vectorized_k8_comm_golden_trace_matches_committed_digest() {
    use marl_repro::algo::Task;
    let cfg = common::scenario_golden_config(Algorithm::Maddpg, Task::CooperativeReference)
        .with_num_envs(8)
        .with_episodes(8);
    let digests = golden::record_run(cfg).expect("training failed");
    assert!(!digests.is_empty(), "comm k8 run recorded no updates");
    if let Err(report) = golden::check_or_bless(
        "maddpg_cooperative_reference_k8",
        &golden::describe_config(&cfg),
        &digests,
    ) {
        panic!("{report}");
    }
}

/// Recording twice under one configuration yields identical digest
/// chains — the trace is a pure function of the config, so the committed
/// goldens can only fail when behaviour actually changes.
#[test]
fn recording_is_deterministic() {
    let cfg =
        common::golden_config(Algorithm::Matd3, SamplerConfig::IpLocality, LayoutMode::Interleaved);
    let a = golden::record_run(cfg).unwrap();
    let b = golden::record_run(cfg).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// Perturbing a hyper-parameter is *pinpointed*: γ enters through the
/// target-Q computation, so the first divergence is at update step 0 in
/// the `losses` field — while the drawn indices, run lengths, and IS
/// weights of that update still match (sampling state cannot depend on
/// γ before the first priority feedback).
#[test]
fn perturbed_gamma_is_named_step_and_field() {
    let cfg = common::golden_config(Algorithm::Maddpg, SamplerConfig::Per, LayoutMode::PerAgent);
    let base = golden::record_run(cfg).unwrap();
    let mut bumped = cfg;
    bumped.gamma = 0.9;
    let alt = golden::record_run(bumped).unwrap();
    let d = golden::first_divergence(&base, &alt).expect("gamma must change the trace");
    let golden::Divergence::Field { step, field, expected, actual } = d else {
        panic!("expected a field divergence, got {d:?}");
    };
    assert_eq!(step, 0, "gamma bites at the very first update");
    assert_eq!(field, "losses", "the critic loss is the first digest field gamma touches");
    assert_ne!(expected, actual);
    // The report a failing golden run prints carries both coordinates.
    let msg = d.to_string();
    assert!(msg.contains("update step 0") && msg.contains("`losses`"), "{msg}");
}

/// Perturbing the seed diverges immediately too — at the drawn indices,
/// the first field of the digest, since the sampling RNG stream itself
/// changed.
#[test]
fn perturbed_seed_diverges_at_the_first_update() {
    let cfg =
        common::golden_config(Algorithm::Maddpg, SamplerConfig::Uniform, LayoutMode::PerAgent);
    let base = golden::record_run(cfg).unwrap();
    let alt = golden::record_run(cfg.with_seed(4243)).unwrap();
    let d = golden::first_divergence(&base, &alt).expect("seed must change the trace");
    let golden::Divergence::Field { step, field, .. } = d else {
        panic!("expected a field divergence, got {d:?}");
    };
    assert_eq!(step, 0);
    assert_eq!(field, "indices");
}
