//! Fault-injection tests of the crash-safe runtime (run with
//! `cargo test --features failpoints`).
//!
//! These drive the recovery machinery end-to-end: a simulated kill mid-run
//! resumes bitwise-identically from the autosave, an injected NaN trips
//! the divergence sentinel and rolls back to the last good checkpoint,
//! and injected write corruption exercises the `.prev` fallback.
#![cfg(feature = "failpoints")]

use marl_repro::algo::failpoint::{self, Fault};
use marl_repro::algo::{
    checkpoint::{load_checkpoint_with_fallback, write_checkpoint_file},
    Algorithm, Task, TrainConfig, TrainError, Trainer,
};
use marl_repro::core::transition::Transition;
use marl_repro::core::SamplerConfig;
use marl_repro::dist::wire::{EpisodeEnd, Heartbeat, Hello, Msg, Steps};
use marl_repro::dist::{
    loopback_pair, Acceptor, DistError, Learner, LearnerOptions, StreamTransport, Transport,
};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

mod common;

/// The failpoint registry is process-global, so tests serialize on this
/// lock and clear the registry on entry.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    guard
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marl_fault_injection_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(sampler: SamplerConfig) -> TrainConfig {
    let mut c =
        common::seeded_config(Algorithm::Maddpg, Task::PredatorPrey, 3, sampler, 6, 32, 1024, 55)
            .with_checkpoint_every(2);
    c.update_every = 25;
    c
}

/// The acceptance scenario: interrupt a run via the failpoint after four
/// episodes, resume from the on-disk autosave, and finish — the final
/// weights and reward curve are bitwise identical to a run that was never
/// interrupted.
#[test]
fn kill_and_resume_is_bitwise_identical() {
    let guard = locked();
    let cfg = config(SamplerConfig::IpLocality);

    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    let path = tmp_path("kill_resume.bin");
    let mut victim = Trainer::new(cfg).unwrap();
    failpoint::arm_after("train::episode", Fault::Abort, 4);
    let err = victim.train_with_autosave(Some(&path)).unwrap_err();
    assert_eq!(err, TrainError::Interrupted { episodes_done: 4 });
    drop(victim); // the "killed" process

    let (ckpt, replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(!from_prev);
    let mut resumed = Trainer::new(cfg).unwrap();
    resumed.restore_full(ckpt, &replay).unwrap();
    assert_eq!(resumed.episodes_done(), 4, "autosave fired at the last even episode");
    let rest = resumed.train_with_autosave(Some(&path)).unwrap();

    assert_eq!(rest.curve.values(), full.curve.values(), "rewards must match bitwise");
    let weights = |t: &Trainer| serde_json::to_string(&t.checkpoint().agents).unwrap();
    assert_eq!(weights(&resumed), weights(&straight), "weights must match bitwise");
    drop(guard);
}

/// An injected NaN TD error trips the sentinel; the runtime rolls back to
/// the in-memory last-good checkpoint and the retry — no longer faulted —
/// completes the run with exactly the un-faulted result.
#[test]
fn transient_nan_recovers_via_rollback() {
    let guard = locked();
    let cfg = config(SamplerConfig::Uniform);

    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    let path = tmp_path("nan_rollback.bin");
    let mut faulted = Trainer::new(cfg).unwrap();
    // Fire on the second update round: by then the episode-2 autosave
    // exists, so the rollback has a checkpoint to return to.
    failpoint::arm_after("update::tds", Fault::Nan, 1);
    let report = faulted.train_with_autosave(Some(&path)).unwrap();

    assert_eq!(report.curve.values(), full.curve.values(), "recovery must be exact");
    let weights = |t: &Trainer| serde_json::to_string(&t.checkpoint().agents).unwrap();
    assert_eq!(weights(&faulted), weights(&straight));
    drop(guard);
}

/// Rollback-with-retry covers *consecutive* divergences while budget
/// remains: two NaNs in a row (the retried iteration faults again) spend
/// both default retries, and the third attempt — clean — still finishes
/// with exactly the un-faulted result.
#[test]
fn consecutive_divergences_within_budget_recover_exactly() {
    let guard = locked();
    let cfg = config(SamplerConfig::Uniform);
    assert_eq!(cfg.sentinel.max_retries, 2, "test assumes the default retry budget");

    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    let path = tmp_path("double_nan_rollback.bin");
    let mut faulted = Trainer::new(cfg).unwrap();
    // Two armed entries on the same site queue up: the first fires on the
    // second update round (the episode-2 autosave exists by then), the
    // second fires on the retried iteration right after the rollback.
    failpoint::arm_after("update::tds", Fault::Nan, 1);
    failpoint::arm("update::tds", Fault::Nan);
    let report = faulted.train_with_autosave(Some(&path)).unwrap();

    assert_eq!(report.curve.values(), full.curve.values(), "recovery must be exact");
    let weights = |t: &Trainer| serde_json::to_string(&t.checkpoint().agents).unwrap();
    assert_eq!(weights(&faulted), weights(&straight));
    drop(guard);
}

/// Exhausting the rollback budget is a structured failure: with
/// `max_retries = 1`, a divergence on the retried iteration has no budget
/// left and surfaces as `TrainError::Diverged` carrying the sentinel's
/// report — even though a good checkpoint exists.
#[test]
fn consecutive_divergences_exhaust_the_rollback_budget() {
    let guard = locked();
    let mut cfg = config(SamplerConfig::Uniform);
    cfg.sentinel.max_retries = 1;
    let path = tmp_path("budget_exhausted.bin");
    let mut t = Trainer::new(cfg).unwrap();
    failpoint::arm_after("update::tds", Fault::Nan, 1);
    failpoint::arm("update::tds", Fault::Nan);
    let err = t.train_with_autosave(Some(&path)).unwrap_err();
    let TrainError::Diverged(report) = err else { panic!("wrong variant: {err:?}") };
    assert!(report.value.is_nan());
    assert_eq!(report.what, "TD error");
    drop(guard);
}

/// A divergence on the very first update: autosaving is *enabled* but has
/// not fired yet (the first update lands before the first autosave
/// interval elapses), so there is no prior checkpoint to roll back to and
/// the full retry budget is irrelevant — the report surfaces immediately.
#[test]
fn divergence_on_first_update_with_no_prior_checkpoint_aborts() {
    let guard = locked();
    let mut cfg = config(SamplerConfig::Uniform);
    // Warmup 64 at 25 steps/episode puts the first update in episode 3;
    // the first autosave would land after episode 5.
    cfg.checkpoint_every = 5;
    let path = tmp_path("first_update_divergence.bin");
    let mut t = Trainer::new(cfg).unwrap();
    failpoint::arm("update::tds", Fault::Nan);
    let err = t.train_with_autosave(Some(&path)).unwrap_err();
    let TrainError::Diverged(report) = err else { panic!("wrong variant: {err:?}") };
    assert!(report.value.is_nan());
    assert_eq!(report.what, "TD error");
    assert!(!path.exists(), "no autosave may have been written before the first update");
    drop(guard);
}

/// With no checkpoint to roll back to, the sentinel's report surfaces as
/// a structured `Diverged` error instead of a panic or a poisoned sum
/// tree.
#[test]
fn divergence_without_checkpoint_aborts_with_report() {
    let guard = locked();
    let mut cfg = config(SamplerConfig::Per);
    cfg.checkpoint_every = 0; // no autosaves, no rollback target
    let mut t = Trainer::new(cfg).unwrap();
    failpoint::arm("update::tds", Fault::Nan);
    let err = t.train().unwrap_err();
    let TrainError::Diverged(report) = err else { panic!("wrong variant: {err:?}") };
    assert!(report.value.is_nan());
    assert_eq!(report.what, "TD error");
    drop(guard);
}

/// An injected I/O failure during the checkpoint write surfaces as a
/// structured error and leaves any previous live file untouched.
#[test]
fn injected_io_error_fails_the_write_cleanly() {
    let guard = locked();
    let path = tmp_path("io_error.bin");
    let mut t = Trainer::new(config(SamplerConfig::Uniform)).unwrap();
    t.prefill(80).unwrap();
    let (ckpt, replay) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &ckpt, &replay).unwrap();

    failpoint::arm("checkpoint::write", Fault::Io);
    let err = write_checkpoint_file(&path, &ckpt, &replay).unwrap_err();
    assert!(matches!(err, TrainError::Checkpoint(_)));
    // The previous good file is still live and loadable.
    let (_, _, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(!from_prev);
    drop(guard);
}

// ---------------------------------------------------------------------
// Transport failpoint sites (`transport::send` / `transport::recv`)
// ---------------------------------------------------------------------

fn hb(seq: u64) -> Msg {
    Msg::Heartbeat(Heartbeat { worker_id: 9, seq, env_steps: 0, send_ns: 0 })
}

/// A bit flipped in a frame payload while in flight is caught by the
/// CRC-32 check on decode — and on the loopback (whole frames, never
/// resynced mid-stream) the *next* frame still decodes cleanly.
#[test]
fn transport_payload_bitflip_is_caught_by_crc() {
    let guard = locked();
    let (mut a, mut b) = loopback_pair(4, Duration::from_millis(100));
    // Bit 300 = byte 37: past the 16-byte header, inside the payload.
    failpoint::arm("transport::send", Fault::BitFlip(300));
    a.send(&hb(1)).unwrap();
    let err = b.recv_timeout(Duration::from_millis(100)).unwrap_err();
    assert!(matches!(err, DistError::CrcMismatch { .. }), "{err}");
    assert!(err.is_quarantine(), "corruption must be a quarantine, not a disconnect");
    a.send(&hb(2)).unwrap();
    let next = b.recv_timeout(Duration::from_millis(100)).unwrap();
    assert!(matches!(next, Msg::Heartbeat(h) if h.seq == 2), "stream must stay framed");
    drop(guard);
}

/// A bit flipped inside the header's magic is a typed `BadMagic`, not a
/// panic or a silent mis-parse.
#[test]
fn transport_header_bitflip_is_bad_magic() {
    let guard = locked();
    let (mut a, mut b) = loopback_pair(4, Duration::from_millis(100));
    failpoint::arm("transport::send", Fault::BitFlip(2));
    a.send(&hb(1)).unwrap();
    let err = b.recv_timeout(Duration::from_millis(100)).unwrap_err();
    assert!(matches!(err, DistError::BadMagic { .. }), "{err}");
    assert!(err.is_quarantine());
    drop(guard);
}

/// Truncation injected at the send site — both inside the header and
/// inside the payload — surfaces as the typed `Truncated` error.
#[test]
fn transport_truncation_is_detected() {
    let guard = locked();
    for cut in [10usize, 40] {
        let (mut a, mut b) = loopback_pair(4, Duration::from_millis(100));
        failpoint::arm("transport::send", Fault::Truncate(cut));
        a.send(&hb(1)).unwrap();
        let err = b.recv_timeout(Duration::from_millis(100)).unwrap_err();
        assert!(matches!(err, DistError::Truncated { .. }), "cut {cut}: {err}");
        assert!(err.is_quarantine());
    }
    drop(guard);
}

/// A torn write on a real socket (frame cut short, then the peer dies):
/// the receiver reads the committed header, sees the stream end before
/// the declared length, and reports `Truncated` — connection-fatal on a
/// byte stream, triggering the worker's reconnect path.
#[test]
fn transport_torn_write_on_socket_is_truncated() {
    let guard = locked();
    let (sa, sb) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let mut a = StreamTransport::unix(sa);
    let mut b = StreamTransport::unix(sb);
    failpoint::arm("transport::send", Fault::Truncate(20));
    a.send(&hb(1)).unwrap();
    drop(a); // the peer dies mid-frame
    let err = b.recv_timeout(Duration::from_millis(200)).unwrap_err();
    assert!(matches!(err, DistError::Truncated { .. }), "{err}");
    drop(guard);
}

/// A delayed write (stalled transport) injected at either site slows the
/// exchange down but corrupts nothing: the frame arrives intact after the
/// injected stall.
#[test]
fn transport_delay_is_survived_intact() {
    let guard = locked();
    let (mut a, mut b) = loopback_pair(4, Duration::from_secs(1));
    failpoint::arm("transport::send", Fault::Delay(60));
    let t0 = std::time::Instant::now();
    a.send(&hb(5)).unwrap();
    let msg = b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(60), "send must have stalled");
    assert!(matches!(msg, Msg::Heartbeat(h) if h.seq == 5));

    let (sa, sb) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let mut sa = StreamTransport::unix(sa);
    let mut sb = StreamTransport::unix(sb);
    failpoint::arm("transport::recv", Fault::Delay(40));
    sa.send(&hb(6)).unwrap();
    let t0 = std::time::Instant::now();
    let msg = sb.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(40), "recv must have stalled");
    assert!(matches!(msg, Msg::Heartbeat(h) if h.seq == 6));
    drop(guard);
}

struct NoNewConns;

impl Acceptor for NoNewConns {
    fn try_accept(&mut self) -> Result<Option<Box<dyn Transport>>, DistError> {
        Ok(None)
    }
}

/// One zeroed joint step with the environment's exact observation
/// dimensions.
fn zero_joint_step() -> Vec<Transition> {
    let env = marl_repro::env::predator_prey(3, 25, 0);
    env.observation_spaces()
        .iter()
        .map(|s| Transition {
            obs: vec![0.0; s.dim],
            action: {
                let mut a = vec![0.0; 5];
                a[0] = 1.0;
                a
            },
            reward: 0.0,
            next_obs: vec![0.0; s.dim],
            done: 0.0,
        })
        .collect()
}

/// End to end: a corrupt `Steps` frame reaching a *serving learner* is
/// quarantined — counted against the sending worker, never ingested into
/// the replay store — and the run still completes.
#[test]
fn learner_quarantines_corrupt_steps_frame() {
    let guard = locked();
    let mut cfg = common::seeded_config(
        Algorithm::Maddpg,
        Task::PredatorPrey,
        3,
        SamplerConfig::Uniform,
        1,
        32,
        1024,
        91,
    );
    cfg.update_every = 10;
    let opts = LearnerOptions { recv_timeout: Duration::from_millis(5), ..Default::default() };
    let mut learner = Learner::new(cfg, opts).expect("learner builds");

    let (mut me, learner_end) = loopback_pair(64, Duration::from_secs(5));
    let speaker = std::thread::spawn(move || {
        me.send(&Msg::Hello(Hello { worker_id: 5, resume: false })).unwrap();
        let welcome = me.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(welcome, Msg::Welcome(_)));
        // The learner sends nothing between the Welcome and the first
        // update, so this frame is deterministically the one corrupted.
        failpoint::arm("transport::send", Fault::BitFlip(777));
        me.send(&Msg::Steps(Steps {
            worker_id: 5,
            epoch: 0,
            seq: 1,
            steps: vec![zero_joint_step()],
            rng: None,
            sync: false,
            ctx: None,
        }))
        .unwrap();
        me.send(&Msg::EpisodeEnd(EpisodeEnd {
            worker_id: 5,
            mean_reward: 0.0,
            master_rng: [1, 2, 3, 4],
            env_rng: [5, 6, 7, 8],
            env_steps: 1,
            samples_since_update: 0,
            ctx: None,
        }))
        .unwrap();
        loop {
            match me.recv_timeout(Duration::from_secs(10)) {
                Ok(Msg::Bye(_)) | Err(DistError::Disconnected) => break,
                Ok(_) => {}
                Err(DistError::Timeout { .. }) => {}
                Err(e) => panic!("speaker transport failed: {e}"),
            }
        }
    });

    learner
        .serve_free(vec![Box::new(learner_end)], &mut NoNewConns, None)
        .expect("serve completes despite the corrupt frame");
    speaker.join().unwrap();

    assert_eq!(learner.supervisor().total_quarantined(), 1);
    assert_eq!(
        learner.supervisor().worker(5).expect("worker known").quarantined,
        1,
        "quarantine attributed to the sending worker"
    );
    assert_eq!(learner.trainer().replay_len(), 0, "corrupt steps must never be ingested");
    assert_eq!(learner.episodes_recorded(), 1, "the run still completed");
    drop(guard);
}

/// Injected write corruption (torn write, bit flip) reaches the live file
/// but is caught by the CRC on load, which falls back to `.prev`.
#[test]
fn injected_corruption_is_caught_and_prev_restores() {
    let guard = locked();
    for fault in [Fault::Truncate(64), Fault::BitFlip(12_345)] {
        let path = tmp_path(&format!("corrupt_{fault:?}.bin"));
        let mut t = Trainer::new(config(SamplerConfig::Uniform)).unwrap();
        t.prefill(100).unwrap();
        let (ckpt, replay) = t.checkpoint_full().unwrap();
        write_checkpoint_file(&path, &ckpt, &replay).unwrap();

        failpoint::arm("checkpoint::write", fault);
        t.prefill(20).unwrap();
        let (ckpt2, replay2) = t.checkpoint_full().unwrap();
        write_checkpoint_file(&path, &ckpt2, &replay2).unwrap();

        let (loaded, loaded_replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
        assert!(from_prev, "{fault:?}: corruption must trigger the fallback");
        let mut fresh = Trainer::new(config(SamplerConfig::Uniform)).unwrap();
        fresh.restore_full(loaded, &loaded_replay).unwrap();
        assert_eq!(fresh.replay_len(), 100);
    }
    drop(guard);
}
