//! End-to-end checks for the runtime telemetry layer (PR 4):
//!
//! * a short training run with every sink attached produces a
//!   Chrome-trace JSON file that parses and contains the expected span
//!   lanes, at least one JSONL metrics snapshot with phase timings and
//!   sampler histograms, and a Prometheus text exposition;
//! * telemetry is an observer only — training with all sinks attached is
//!   bitwise identical (checkpoint + replay bytes) to training without.

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::nn::kernels::KernelChoice;
use marl_repro::obs::{KernelTally, MetricsSnapshot, SnapshotContext, Telemetry, TelemetryConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Chrome trace-event metadata payload (`{"name": "trainer"}`).
#[derive(Debug, Default, Serialize, Deserialize)]
struct TraceArgs {
    #[serde(default)]
    name: String,
}

/// One entry of `traceEvents`. `ts`/`dur` are absent on "M" metadata
/// rows and `args` is absent on "X" spans, so both default.
#[derive(Debug, Serialize, Deserialize)]
struct TraceEvent {
    name: String,
    #[serde(default)]
    cat: String,
    ph: String,
    #[serde(default)]
    ts: f64,
    #[serde(default)]
    dur: f64,
    pid: u32,
    tid: u32,
    #[serde(default)]
    args: TraceArgs,
}

/// Top-level Chrome trace object. The field name is dictated by the
/// trace-event format, which uses camelCase.
#[allow(non_snake_case)]
#[derive(Debug, Serialize, Deserialize)]
struct TraceFile {
    traceEvents: Vec<TraceEvent>,
}

mod common;

fn short_config(seed: u64) -> TrainConfig {
    common::seeded_config(
        Algorithm::Maddpg,
        Task::PredatorPrey,
        3,
        SamplerConfig::Per,
        24,
        32,
        2048,
        seed,
    )
    .with_kernel(KernelChoice::Scalar)
}

/// Trains with the given telemetry attachment and returns the
/// checkpoint JSON plus replay bytes — the full observable model state.
/// The embedded phase profile is wall-clock time, non-deterministic
/// between *any* two runs, so it is zeroed before fingerprinting.
fn train_fingerprint(tel: Option<Arc<Telemetry>>) -> (String, Vec<u8>) {
    let mut t = Trainer::new(short_config(11)).unwrap();
    if let Some(tel) = &tel {
        t.attach_telemetry(Arc::clone(tel));
    }
    let report = t.train().unwrap();
    assert!(report.update_iterations > 0, "run too short to exercise the update path");
    if let Some(tel) = &tel {
        tel.finish(&SnapshotContext {
            episode: report.curve.len() as u64,
            profile: &report.profile,
            kernels: KernelTally::default(),
        });
    }
    let (mut ckpt, replay) = t.checkpoint_full().unwrap();
    if let Some(run) = ckpt.run.as_mut() {
        run.profile = marl_repro::perf::PhaseProfile::default();
    }
    (serde_json::to_string(&ckpt).unwrap(), replay)
}

#[test]
fn trace_and_metrics_files_are_valid_and_complete() {
    let dir = std::env::temp_dir().join(format!("marl_telemetry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");
    let prom_path = dir.join("metrics.prom");

    let cfg = TelemetryConfig {
        trace_out: Some(trace_path.clone()),
        metrics_out: Some(metrics_path.clone()),
        metrics_every: 8,
        prometheus_out: Some(prom_path.clone()),
        hw_counters: true, // falls back to the null source when denied
        ..TelemetryConfig::default()
    };
    let tel = Arc::new(Telemetry::new(&cfg).unwrap());
    train_fingerprint(Some(Arc::clone(&tel)));

    // --- Chrome trace: parses, has the lanes and spans we emit. ---
    let raw = std::fs::read_to_string(&trace_path).unwrap();
    let trace: TraceFile = serde_json::from_str(&raw).unwrap();
    assert!(!trace.traceEvents.is_empty());
    let meta_names: Vec<&str> =
        trace.traceEvents.iter().filter(|e| e.ph == "M").map(|e| e.args.name.as_str()).collect();
    assert!(meta_names.contains(&"trainer"));
    assert!(meta_names.contains(&"agent-0"));
    assert!(meta_names.contains(&"agent-2"));
    let span_names: Vec<&str> =
        trace.traceEvents.iter().filter(|e| e.ph == "X").map(|e| e.name.as_str()).collect();
    for expected in
        ["episode", "mini-batch-sampling", "target-q-shared", "agent-update", "update-all-trainers"]
    {
        assert!(span_names.contains(&expected), "trace is missing span {expected}");
    }
    for e in trace.traceEvents.iter().filter(|e| e.ph == "X") {
        assert!(e.ts >= 0.0 && e.dur >= 0.0, "negative timestamp in {}", e.name);
        assert_eq!(e.pid, 1);
        assert_eq!(e.cat, "marl");
    }
    // Agent-update spans land on the per-agent lanes (tid 1..=3).
    assert!(
        trace
            .traceEvents
            .iter()
            .any(|e| e.ph == "X" && e.name == "agent-update" && (1..=3).contains(&e.tid)),
        "agent-update spans must use the agent lanes"
    );

    // --- Metrics JSONL: periodic snapshots plus a final `fin` one. ---
    let raw = std::fs::read_to_string(&metrics_path).unwrap();
    let snaps: Vec<MetricsSnapshot> =
        raw.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
    assert!(snaps.len() >= 2, "expected periodic + final snapshots, got {}", snaps.len());
    let last = snaps.last().unwrap();
    assert!(last.fin, "last JSONL line must be the final snapshot");
    assert!(snaps.iter().rev().skip(1).all(|s| !s.fin));
    assert!(!last.phases.is_empty(), "final snapshot must embed the phase breakdown");
    let share_sum: f64 = last.phases.iter().map(|p| p.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "phase shares must sum to 1, got {share_sum}");
    assert!(last.run_length.count > 0, "PER sampling must record run lengths");
    assert!(last.norm_priority.count > 0, "PER sampling must record normalized priorities");
    assert!(last.is_weight.count > 0, "PER sampling must record IS weights");
    assert!(last.replay_occupancy > 0.0 && last.replay_occupancy <= 1.0);
    assert!(last.updates > 0 && last.update_ns.count == last.updates);
    assert_eq!(last.spans_dropped, 0, "default ring must not drop spans on a short run");

    // --- Prometheus exposition: well-formed families for key series. ---
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    for needle in [
        "# TYPE marl_episodes_total counter",
        "# TYPE marl_run_length histogram",
        "marl_run_length_bucket{le=\"+Inf\"}",
        "marl_replay_occupancy ",
        "marl_phase_ns_total{phase=\"mini-batch-sampling\"}",
    ] {
        assert!(prom.contains(needle), "prometheus output is missing {needle}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_does_not_perturb_training() {
    let dir = std::env::temp_dir().join(format!("marl_telemetry_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = TelemetryConfig {
        trace_out: Some(dir.join("trace.json")),
        metrics_out: Some(dir.join("metrics.jsonl")),
        metrics_every: 4,
        prometheus_out: Some(dir.join("metrics.prom")),
        hw_counters: true,
        ..TelemetryConfig::default()
    };
    let tel = Arc::new(Telemetry::new(&cfg).unwrap());

    let (ckpt_on, replay_on) = train_fingerprint(Some(tel));
    let (ckpt_off, replay_off) = train_fingerprint(None);

    assert_eq!(ckpt_on, ckpt_off, "telemetry must not change the trained model");
    assert_eq!(replay_on, replay_off, "telemetry must not change the replay stream");

    std::fs::remove_dir_all(&dir).ok();
}
