//! Cross-crate integration tests of the sampling optimizations: the
//! optimized paths must return the *same data* as the baseline when given
//! the same plan, and valid data under their own plans.

use marl_repro::core::config::SamplerConfig;
use marl_repro::core::indices::SamplePlan;
use marl_repro::core::layout::InterleavedStore;
use marl_repro::core::multi::MultiAgentReplay;
use marl_repro::core::transition::{Transition, TransitionLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filled(agents: usize, rows: usize, obs_dim: usize) -> MultiAgentReplay {
    let layouts = vec![TransitionLayout::new(obs_dim, 5); agents];
    let mut replay = MultiAgentReplay::new(&layouts, rows * 2);
    let mut rng = StdRng::seed_from_u64(5);
    for t in 0..rows {
        let step: Vec<Transition> = (0..agents)
            .map(|a| Transition {
                obs: (0..obs_dim).map(|_| rng.gen()).collect(),
                action: vec![0.0, 1.0, 0.0, 0.0, 0.0],
                reward: (t * 100 + a) as f32,
                next_obs: (0..obs_dim).map(|_| rng.gen()).collect(),
                done: 0.0,
            })
            .collect();
        replay.push_step(&step).unwrap();
    }
    replay
}

#[test]
fn interleaved_layout_returns_identical_batches() {
    let replay = filled(4, 500, 16);
    let (store, report) = InterleavedStore::reorganize_from(&replay);
    assert_eq!(report.rows, 500);
    let mut rng = StdRng::seed_from_u64(0);
    for _ in 0..10 {
        let mut sampler = SamplerConfig::Uniform.build(500);
        let plan = sampler.plan(500, 64, &mut rng).unwrap();
        let a = replay.sample(&plan).unwrap();
        let b = store.sample(&plan).unwrap();
        assert_eq!(a.agents, b.agents, "layouts must agree on batch content");
        assert_eq!(a.indices, b.indices);
    }
}

#[test]
fn locality_plan_gathers_real_consecutive_rows() {
    let replay = filled(2, 1000, 8);
    let mut sampler = SamplerConfig::Locality { neighbors: 16 }.build(1000);
    let mut rng = StdRng::seed_from_u64(1);
    let plan = sampler.plan(1000, 64, &mut rng).unwrap();
    let batch = replay.sample(&plan).unwrap();
    // Rewards encode the time index: inside each run of 16, consecutive
    // rows must be consecutive time steps.
    let rewards = &batch.agents[0].rewards;
    for chunk in rewards.chunks(16) {
        for pair in chunk.windows(2) {
            assert_eq!(pair[1] - pair[0], 100.0, "neighbors must be consecutive transitions");
        }
    }
}

#[test]
fn all_samplers_produce_aligned_multi_agent_batches() {
    let replay = filled(3, 800, 12);
    let mut rng = StdRng::seed_from_u64(2);
    for cfg in [
        SamplerConfig::Uniform,
        SamplerConfig::LocalityN16R64,
        SamplerConfig::Per,
        SamplerConfig::IpLocality,
    ] {
        let mut sampler = cfg.build(800);
        if cfg.is_prioritized() {
            for slot in 0..800 {
                sampler.observe_push(slot);
            }
        }
        let plan = sampler.plan(800, 128, &mut rng).unwrap();
        let batch = replay.sample(&plan).unwrap();
        assert_eq!(batch.len(), 128, "{cfg:?}");
        // Alignment: rewards differ only by the agent offset.
        for r in 0..128 {
            let t0 = batch.agents[0].rewards[r];
            assert_eq!(batch.agents[1].rewards[r], t0 + 1.0, "{cfg:?}");
            assert_eq!(batch.agents[2].rewards[r], t0 + 2.0, "{cfg:?}");
        }
    }
}

#[test]
fn prioritized_feedback_loop_survives_ring_wraparound() {
    let layouts = vec![TransitionLayout::new(4, 5); 2];
    let mut replay = MultiAgentReplay::new(&layouts, 64);
    let mut sampler = SamplerConfig::Per.build(64);
    let mut rng = StdRng::seed_from_u64(3);
    let step: Vec<Transition> = (0..2)
        .map(|_| Transition {
            obs: vec![0.0; 4],
            action: vec![1.0, 0.0, 0.0, 0.0, 0.0],
            reward: 0.0,
            next_obs: vec![0.0; 4],
            done: 0.0,
        })
        .collect();
    // Push 3x capacity so slots wrap; interleave sampling + updates.
    for i in 0..192 {
        let slot = replay.push_step(&step).unwrap();
        sampler.observe_push(slot);
        if i > 32 && i % 16 == 0 {
            let plan = sampler.plan(replay.len(), 16, &mut rng).unwrap();
            let batch = replay.sample(&plan).unwrap();
            let tds: Vec<f32> = (0..batch.len()).map(|k| k as f32 * 0.1).collect();
            sampler.update_priorities(&batch.indices, &tds);
        }
    }
    assert_eq!(replay.len(), 64);
    let plan = sampler.plan(64, 32, &mut rng).unwrap();
    assert!(plan.flatten().iter().all(|&i| i < 64));
}

#[test]
fn heterogeneous_observation_widths_stay_consistent() {
    // Predator-prey at 3 agents has Box(16) predators; check a mixed
    // layout multi-buffer also works end-to-end with sampling.
    let layouts = vec![
        TransitionLayout::new(16, 5),
        TransitionLayout::new(16, 5),
        TransitionLayout::new(14, 5),
    ];
    let mut replay = MultiAgentReplay::new(&layouts, 256);
    for _ in 0..100 {
        let step: Vec<Transition> = layouts
            .iter()
            .map(|l| Transition {
                obs: vec![1.0; l.obs_dim],
                action: vec![0.0; 5],
                reward: 0.0,
                next_obs: vec![2.0; l.obs_dim],
                done: 0.0,
            })
            .collect();
        replay.push_step(&step).unwrap();
    }
    let plan = SamplePlan::from_indices(&[0, 50, 99]);
    let batch = replay.sample(&plan).unwrap();
    assert_eq!(batch.agents[0].obs.len(), 3 * 16);
    assert_eq!(batch.agents[2].obs.len(), 3 * 14);
    let (store, _) = InterleavedStore::reorganize_from(&replay);
    assert_eq!(store.sample(&plan).unwrap().agents, batch.agents);
}
