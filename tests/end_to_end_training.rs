//! Integration tests spanning the whole stack: environment → replay →
//! samplers → networks → trainer.

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::perf::phase::Phase;

mod common;

fn quick(algorithm: Algorithm, task: Task, agents: usize, sampler: SamplerConfig) -> TrainConfig {
    let mut c = common::seeded_config(algorithm, task, agents, sampler, 5, 64, 4096, 99);
    c.update_every = 30;
    c
}

#[test]
fn every_algorithm_task_sampler_combination_trains() {
    for algorithm in [Algorithm::Maddpg, Algorithm::Matd3] {
        for task in [Task::PredatorPrey, Task::CooperativeNavigation] {
            for sampler in [
                SamplerConfig::Uniform,
                SamplerConfig::LocalityN16R64,
                SamplerConfig::Per,
                SamplerConfig::IpLocality,
            ] {
                let mut trainer =
                    Trainer::new(quick(algorithm, task, 3, sampler)).expect("trainer");
                let report = trainer.train().expect("train");
                assert_eq!(report.curve.len(), 5, "{algorithm:?} {task:?} {sampler:?}");
                assert!(report.update_iterations > 0, "{algorithm:?} {task:?} {sampler:?}");
                assert!(
                    report.curve.values().iter().all(|r| r.is_finite()),
                    "rewards must stay finite"
                );
            }
        }
    }
}

#[test]
fn phase_profile_covers_all_training_phases() {
    let mut trainer =
        Trainer::new(quick(Algorithm::Maddpg, Task::PredatorPrey, 3, SamplerConfig::Uniform))
            .unwrap();
    let report = trainer.train().unwrap();
    for phase in [
        Phase::ActionSelection,
        Phase::EnvironmentStep,
        Phase::Bookkeeping,
        Phase::MiniBatchSampling,
        Phase::TargetQ,
        Phase::QLossPLoss,
        Phase::SoftUpdate,
    ] {
        assert!(
            report.profile.get(phase) > std::time::Duration::ZERO,
            "phase {phase:?} unmeasured"
        );
    }
    // Fractions sum to ~1.
    let sum: f64 = Phase::ALL.iter().map(|&p| report.profile.fraction(p)).sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn training_reduces_or_maintains_loss_signal() {
    // Cooperative navigation with a longer run: the smoothed reward of the
    // last quarter should not be dramatically worse than the first quarter
    // (learning sanity, not a performance claim).
    let mut config =
        quick(Algorithm::Maddpg, Task::CooperativeNavigation, 3, SamplerConfig::Uniform)
            .with_episodes(30);
    config.warmup = 256;
    let mut trainer = Trainer::new(config).unwrap();
    let report = trainer.train().unwrap();
    let vals = report.curve.values();
    let quarter = vals.len() / 4;
    let first: f32 = vals[..quarter].iter().sum::<f32>() / quarter as f32;
    let last: f32 = vals[vals.len() - quarter..].iter().sum::<f32>() / quarter as f32;
    assert!(last > first - 200.0, "reward collapsed: first quarter {first}, last quarter {last}");
}

#[test]
fn replay_stays_aligned_with_environment_dimensions() {
    let mut trainer =
        Trainer::new(quick(Algorithm::Maddpg, Task::PredatorPrey, 6, SamplerConfig::Uniform))
            .unwrap();
    trainer.prefill(300).unwrap();
    let replay = trainer.replay().expect("per-agent layout exposes the replay");
    assert_eq!(replay.agent_count(), 6);
    assert_eq!(replay.len(), 300);
    let env = marl_repro::env::predator_prey(6, 25, 0);
    for (buffer_idx, space) in env.observation_spaces().iter().enumerate() {
        assert_eq!(replay.buffer(buffer_idx).layout().obs_dim, space.dim);
    }
}

#[test]
fn physical_deception_trains_with_heterogeneous_observations() {
    // The extension scenario mixes 8-dim adversary and 10-dim good-agent
    // observations; the trainer must handle per-agent layouts end-to-end.
    let mut trainer = Trainer::new(quick(
        Algorithm::Maddpg,
        Task::PhysicalDeception,
        3,
        SamplerConfig::LocalityN16R64,
    ))
    .unwrap();
    let report = trainer.train().unwrap();
    assert!(report.update_iterations > 0);
    let replay = trainer.replay().unwrap();
    let dims: Vec<usize> = (0..3).map(|a| replay.buffer(a).layout().obs_dim).collect();
    assert_eq!(dims, vec![8, 10, 10]);
}

#[test]
fn matd3_differs_from_maddpg_under_same_seed() {
    let run = |algorithm| {
        let mut trainer =
            Trainer::new(quick(algorithm, Task::PredatorPrey, 3, SamplerConfig::Uniform)).unwrap();
        trainer.train().unwrap().curve.values().to_vec()
    };
    // Same seed, different algorithms => different trajectories once
    // updates start (twin critics + delayed policy).
    assert_ne!(run(Algorithm::Maddpg), run(Algorithm::Matd3));
}
