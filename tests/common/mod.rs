//! Shared fixtures for the integration suites.
//!
//! Every end-to-end suite needs the same "small seeded trainer" shape:
//! paper defaults shrunk to a fast deterministic run — a tiny episode
//! budget, small batch and buffer, warmup 64 so updates start almost
//! immediately. This module is the single definition; each suite passes
//! the handful of knobs it actually varies instead of re-deriving the
//! whole configuration.
//!
//! Compiled into several independent test binaries, none of which uses
//! every item, hence the file-level `dead_code` allowance.
#![allow(dead_code)]

use marl_repro::algo::{Algorithm, LayoutMode, Task, TrainConfig};
use marl_repro::core::SamplerConfig;
use marl_repro::nn::kernels::KernelChoice;

/// The common small-seeded-trainer configuration. Applies the shared
/// shrinkage (warmup 64 after the batch override) and leaves
/// suite-specific fields (`update_every`, `kernel`, `layout`, …) to the
/// caller.
#[allow(clippy::too_many_arguments)]
pub fn seeded_config(
    algorithm: Algorithm,
    task: Task,
    agents: usize,
    sampler: SamplerConfig,
    episodes: usize,
    batch: usize,
    capacity: usize,
    seed: u64,
) -> TrainConfig {
    let mut c = TrainConfig::paper_defaults(algorithm, task, agents)
        .with_sampler(sampler)
        .with_episodes(episodes)
        .with_batch_size(batch)
        .with_buffer_capacity(capacity)
        .with_seed(seed);
    c.warmup = 64;
    c
}

/// The golden-trace configuration: one fixed small run per
/// algorithm × sampler × layout combination (predator-prey, 3 agents,
/// 4 × 25-step episodes, batch 32, seed 4242, updates every 10 samples
/// past warmup ⇒ a handful of update iterations per trace).
///
/// The kernel is pinned to scalar: `Auto` resolves per-host, and SIMD
/// kernels are bitwise-different from scalar ones, so only the scalar
/// path yields machine-independent traces.
pub fn golden_config(
    algorithm: Algorithm,
    sampler: SamplerConfig,
    layout: LayoutMode,
) -> TrainConfig {
    let mut c = seeded_config(algorithm, Task::PredatorPrey, 3, sampler, 4, 32, 1024, 4242)
        .with_layout(layout)
        .with_kernel(KernelChoice::Scalar);
    c.update_every = 10;
    c
}

/// The per-scenario golden configuration: the [`golden_config`] shape
/// (3 agents, 4 × 25-step episodes, batch 32, seed 4242, scalar kernel,
/// uniform sampling, per-agent layout) pointed at an arbitrary registered
/// scenario, so every scenario's full training numerics — comm actions
/// and heterogeneous heads included — pin to one committed trace per
/// algorithm.
pub fn scenario_golden_config(algorithm: Algorithm, task: Task) -> TrainConfig {
    let mut c = seeded_config(algorithm, task, 3, SamplerConfig::Uniform, 4, 32, 1024, 4242)
        .with_layout(LayoutMode::PerAgent)
        .with_kernel(KernelChoice::Scalar);
    c.update_every = 10;
    c
}
