//! Proves the zero-allocation claim of the update pipeline: once the
//! persistent scratch arena is warmed up, `update_all_trainers` performs
//! no heap allocations on the serial path.
//!
//! A counting wrapper around the system allocator is armed only around
//! the measured updates, so test-harness and warm-up allocations are not
//! counted. The parallel paths (`update_threads > 1`,
//! `sampling_threads > 1`) spawn scoped threads and are exempt by
//! design; this test pins both to 1.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs warmed-up steady-state updates with the allocator armed and
/// asserts no heap traffic. `telemetry` optionally attaches a live
/// [`marl_repro::obs::Telemetry`] first — span recording, metric
/// atomics, and hardware-counter windows must all stay off the heap.
fn assert_zero_alloc_updates(telemetry: bool, seed: u64) {
    use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
    use marl_repro::core::SamplerConfig;

    let mut cfg = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
        .with_batch_size(32)
        .with_buffer_capacity(4096)
        .with_sampler(SamplerConfig::Uniform)
        .with_update_threads(1)
        .with_seed(seed);
    cfg.sampling_threads = 1;
    let mut t = Trainer::new(cfg).unwrap();
    if telemetry {
        // No sinks: sinks flush only at episode boundaries, which this
        // test never crosses, but the recording hot path is identical.
        let cfg = marl_repro::obs::TelemetryConfig {
            hw_counters: true, // null fallback when perf_event is denied
            ..marl_repro::obs::TelemetryConfig::default()
        };
        let tel = std::sync::Arc::new(marl_repro::obs::Telemetry::new(&cfg).unwrap());
        t.attach_telemetry(tel);
    }
    t.prefill(256).unwrap();

    // Warm-up updates size every scratch buffer and resolve one-time lazy
    // state (Adam moment matrices, the MARL_KERNEL env read, MLP
    // activation caches).
    for _ in 0..3 {
        t.update_all_trainers().unwrap();
    }

    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        t.update_all_trainers().unwrap();
    }
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(
        (ALLOCS.load(Ordering::SeqCst), REALLOCS.load(Ordering::SeqCst)),
        (0, 0),
        "steady-state update_all_trainers must not touch the heap (telemetry: {telemetry})"
    );
    assert_eq!(t.update_iterations(), 8);
}

/// The vectorized rollout counterpart: once the first episode has sized
/// the rollout scratch (obs/one-hot matrices, per-world buffers) and the
/// replay ring has wrapped once, whole episodes — batched inference,
/// SoA physics steps, replay pushes, and the scheduled updates they
/// trigger — run without heap traffic.
fn assert_zero_alloc_vec_rollout(telemetry: bool, seed: u64) {
    use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
    use marl_repro::core::SamplerConfig;

    let mut cfg = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
        .with_batch_size(32)
        .with_buffer_capacity(4096)
        .with_sampler(SamplerConfig::Uniform)
        .with_update_threads(1)
        .with_num_envs(4)
        .with_seed(seed);
    cfg.sampling_threads = 1;
    cfg.warmup = 64;
    let mut t = Trainer::new(cfg).unwrap();
    if telemetry {
        let cfg = marl_repro::obs::TelemetryConfig {
            hw_counters: true, // null fallback when perf_event is denied
            ..marl_repro::obs::TelemetryConfig::default()
        };
        let tel = std::sync::Arc::new(marl_repro::obs::Telemetry::new(&cfg).unwrap());
        t.attach_telemetry(tel);
    }

    // Warm-up episodes: size the rollout scratch, pass warmup so the
    // update path runs, and wrap the replay ring (4 worlds x 25 steps x
    // 3 agents = 300 rows per episode; 14 episodes > 4096 capacity).
    for _ in 0..14 {
        t.run_episode_vec().unwrap();
    }
    assert!(t.update_iterations() > 0, "warm-up must reach the update path");

    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..2 {
        t.run_episode_vec().unwrap();
    }
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(
        (ALLOCS.load(Ordering::SeqCst), REALLOCS.load(Ordering::SeqCst)),
        (0, 0),
        "steady-state vectorized rollout must not touch the heap (telemetry: {telemetry})"
    );
}

#[test]
fn steady_state_update_allocates_nothing() {
    assert_zero_alloc_updates(false, 7);
}

#[test]
fn steady_state_update_allocates_nothing_with_telemetry() {
    assert_zero_alloc_updates(true, 7);
}

#[test]
fn steady_state_vec_rollout_allocates_nothing() {
    assert_zero_alloc_vec_rollout(false, 9);
}

#[test]
fn steady_state_vec_rollout_allocates_nothing_with_telemetry() {
    assert_zero_alloc_vec_rollout(true, 9);
}
