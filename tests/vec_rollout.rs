//! Vectorized rollout engine integration tests: the K = 1 vectorized
//! path must be bitwise-identical to the legacy scalar rollout, K > 1
//! runs must be seeded-deterministic and resumable through the on-disk
//! checkpoint format, and checkpoints written before the engine existed
//! must still restore and resume bitwise.

use marl_repro::algo::checkpoint::{load_checkpoint_with_fallback, write_checkpoint_file};
use marl_repro::algo::explore::ExplorationSchedule;
use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::nn::kernels::KernelChoice;
use std::path::PathBuf;

mod common;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marl_vec_rollout_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn base_config(task: Task, seed: u64) -> TrainConfig {
    let mut c = common::seeded_config(
        Algorithm::Maddpg,
        task,
        3,
        SamplerConfig::Uniform,
        6,
        32,
        1024,
        seed,
    )
    .with_kernel(KernelChoice::Scalar);
    c.update_every = 10;
    c
}

fn weights_json(t: &Trainer) -> String {
    serde_json::to_string(&t.checkpoint().agents).unwrap()
}

fn reward_bits(rewards: &[f32]) -> Vec<u32> {
    rewards.iter().map(|r| r.to_bits()).collect()
}

/// The headline equivalence property: forcing episodes through
/// [`Trainer::run_episode_vec`] at K = 1 reproduces the legacy scalar
/// rollout bit for bit — per-episode rewards, every counter, the master
/// and environment RNG streams, the replay bytes, and the network
/// weights after scheduled updates. Runs each task and, separately, an
/// annealed schedule so the ε-greedy branch is exercised too.
#[test]
fn k1_vectorized_path_is_bitwise_identical_to_scalar() {
    let mut configs = vec![
        ("pp", base_config(Task::PredatorPrey, 99)),
        ("cn", base_config(Task::CooperativeNavigation, 99)),
        ("pd", base_config(Task::PhysicalDeception, 99)),
    ];
    let mut eps = base_config(Task::PredatorPrey, 1234);
    eps.exploration = ExplorationSchedule::annealed(500);
    configs.push(("pp-annealed", eps));

    for (tag, cfg) in configs {
        let mut scalar = Trainer::new(cfg).unwrap();
        let mut vec = Trainer::new(cfg).unwrap();
        let mut scalar_rewards = Vec::new();
        let mut vec_rewards = Vec::new();
        for _ in 0..4 {
            scalar_rewards.push(scalar.run_episode().unwrap());
            vec_rewards.push(vec.run_episode_vec().unwrap());
        }
        assert_eq!(reward_bits(&scalar_rewards), reward_bits(&vec_rewards), "{tag}: rewards");

        let (s_ckpt, s_replay) = scalar.checkpoint_full().unwrap();
        let (v_ckpt, v_replay) = vec.checkpoint_full().unwrap();
        let s_run = s_ckpt.run.as_ref().unwrap();
        let v_run = v_ckpt.run.as_ref().unwrap();
        assert_eq!(s_run.env_steps, v_run.env_steps, "{tag}: env steps");
        assert_eq!(s_run.samples_since_update, v_run.samples_since_update, "{tag}");
        assert_eq!(s_run.master_rng, v_run.master_rng, "{tag}: master RNG stream");
        assert_eq!(s_run.env_rng, v_run.env_rng, "{tag}: env RNG stream");
        assert_eq!(s_run.telemetry, v_run.telemetry, "{tag}: sampling telemetry");
        assert!(v_run.rollout_rngs.is_empty(), "{tag}: K=1 must not fork noise streams");
        assert!(v_run.vec_env_rngs.is_empty(), "{tag}: K=1 must not fork env streams");
        assert_eq!(s_replay, v_replay, "{tag}: replay bytes");
        assert_eq!(weights_json(&scalar), weights_json(&vec), "{tag}: weights");
    }
}

/// A K = 1 checkpoint written by the vectorized path restores into a
/// legacy scalar trainer (and vice versa) and resumes bitwise — the
/// world-0 environment stream occupies the same `env_rng` slot in both.
#[test]
fn k1_checkpoints_interoperate_between_paths() {
    let cfg = base_config(Task::PredatorPrey, 7);
    // Reference: three scalar episodes straight through.
    let mut reference = Trainer::new(cfg).unwrap();
    reference.run_episode().unwrap();
    reference.run_episode().unwrap();
    let third_ref = reference.run_episode().unwrap();

    // Vec-path checkpoint after two episodes → scalar trainer resumes.
    let mut vec = Trainer::new(cfg).unwrap();
    vec.run_episode_vec().unwrap();
    vec.run_episode_vec().unwrap();
    let (ckpt, replay) = vec.checkpoint_full().unwrap();
    let mut scalar = Trainer::new(cfg).unwrap();
    scalar.restore_full(ckpt, &replay).unwrap();
    let third_scalar = scalar.run_episode().unwrap();
    assert_eq!(third_scalar.to_bits(), third_ref.to_bits(), "scalar resume from vec checkpoint");

    // Scalar-path checkpoint after two episodes → vec path resumes.
    let mut legacy = Trainer::new(cfg).unwrap();
    legacy.run_episode().unwrap();
    legacy.run_episode().unwrap();
    let (ckpt, replay) = legacy.checkpoint_full().unwrap();
    let mut resumed = Trainer::new(cfg).unwrap();
    resumed.restore_full(ckpt, &replay).unwrap();
    let third_vec = resumed.run_episode_vec().unwrap();
    assert_eq!(third_vec.to_bits(), third_ref.to_bits(), "vec resume from scalar checkpoint");
}

/// K = 8 training is a pure function of the seed: two runs agree bitwise
/// on the whole curve, counters, and weights; a different seed diverges.
#[test]
fn k8_training_is_seeded_deterministic() {
    let cfg = base_config(Task::PredatorPrey, 4242).with_num_envs(8).with_episodes(32);
    let mut a = Trainer::new(cfg).unwrap();
    let mut b = Trainer::new(cfg).unwrap();
    let ra = a.train().unwrap();
    let rb = b.train().unwrap();
    assert_eq!(reward_bits(ra.curve.values()), reward_bits(rb.curve.values()));
    assert_eq!(ra.env_steps, rb.env_steps);
    assert_eq!(ra.update_iterations, rb.update_iterations);
    assert!(ra.update_iterations > 0, "the run must exercise the update path");
    assert_eq!(weights_json(&a), weights_json(&b));

    let mut c = Trainer::new(cfg.with_seed(4243)).unwrap();
    let rc = c.train().unwrap();
    assert_ne!(
        reward_bits(ra.curve.values()),
        reward_bits(rc.curve.values()),
        "different seeds must produce different rollouts"
    );
}

/// The resume-equivalence property at K = 8 through the on-disk format:
/// train straight vs. halfway → checkpoint file → fresh trainer →
/// restore → rest. All per-world RNG streams (noise + env) must survive
/// the round trip for the curves and weights to match bitwise.
#[test]
fn k8_resume_from_file_is_bitwise_identical() {
    let cfg = base_config(Task::PredatorPrey, 77).with_num_envs(8).with_episodes(32);
    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    let mut first = Trainer::new(cfg.with_episodes(16)).unwrap();
    first.train().unwrap();
    let (ckpt, replay) = first.checkpoint_full().unwrap();
    let run = ckpt.run.as_ref().unwrap();
    assert_eq!(run.vec_env_rngs.len(), 7, "worlds 1..8 persist beside env_rng");
    assert_eq!(run.rollout_rngs.len(), 8, "one noise stream per world");
    let path = tmp_path("resume_k8.bin");
    write_checkpoint_file(&path, &ckpt, &replay).unwrap();

    let (ckpt, replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(!from_prev);
    let mut resumed = Trainer::new(cfg).unwrap();
    resumed.restore_full(ckpt, &replay).unwrap();
    assert_eq!(resumed.episodes_done(), 16);
    let rest = resumed.train().unwrap();

    assert_eq!(reward_bits(rest.curve.values()), reward_bits(full.curve.values()), "rewards");
    assert_eq!(rest.env_steps, full.env_steps);
    assert_eq!(rest.update_iterations, full.update_iterations);
    assert_eq!(weights_json(&resumed), weights_json(&straight), "weights");
}

/// Forward compatibility: a checkpoint written before the vectorized
/// engine existed (no `rollout_rngs`/`vec_env_rngs` keys in the JSON)
/// still deserializes, restores, and resumes bitwise on the scalar path.
#[test]
fn pre_vectorization_checkpoints_still_restore_and_resume() {
    let cfg = base_config(Task::PredatorPrey, 55);
    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    let mut first = Trainer::new(cfg.with_episodes(3)).unwrap();
    first.train().unwrap();
    let (ckpt, replay) = first.checkpoint_full().unwrap();

    // Re-encode the checkpoint JSON with the vectorized-engine fields
    // stripped, exactly as an older binary would have written it. Both
    // are empty on the scalar path, so the compact encoding is fixed.
    let json = serde_json::to_string(&ckpt).unwrap();
    let stripped = json.replace(",\"rollout_rngs\":[],\"vec_env_rngs\":[]", "");
    assert_ne!(stripped, json, "the vectorized fields must have been present");
    let aged: marl_repro::algo::checkpoint::Checkpoint = serde_json::from_str(&stripped).unwrap();

    let mut resumed = Trainer::new(cfg).unwrap();
    resumed.restore_full(aged, &replay).unwrap();
    let rest = resumed.train().unwrap();
    assert_eq!(reward_bits(rest.curve.values()), reward_bits(full.curve.values()));
    assert_eq!(weights_json(&resumed), weights_json(&straight));
}

/// The curve counts completed environment episodes: one entry per world
/// per vectorized episode, and env-steps scale with K.
#[test]
fn k4_curve_records_one_entry_per_world() {
    let cfg = base_config(Task::PredatorPrey, 11).with_num_envs(4).with_episodes(8);
    let mut t = Trainer::new(cfg).unwrap();
    let report = t.train().unwrap();
    assert_eq!(report.curve.len(), 8, "2 vectorized episodes x 4 worlds");
    assert_eq!(
        report.env_steps,
        2 * 4 * cfg.max_episode_len as u64,
        "env steps count every world's transition"
    );
}
