//! Distributed lockstep ⇔ single-process bitwise equivalence.
//!
//! The acceptance anchor of the distributed runtime: one rollout worker
//! over the deterministic in-process loopback, serving a learner in
//! lockstep mode, must reproduce the single-process trainer's update
//! digest chain **bitwise** — same drawn indices, same losses, same
//! parameter hashes, same chain checksum, for both algorithms.
//!
//! The worker replicates `run_episode`'s draw order against its own
//! copy of the nets and hands its master-RNG state to the learner at
//! every update boundary; any drift in that replication (an extra RNG
//! draw, a misordered exploration branch, a replay-mirror off-by-one)
//! shows up here as the first divergent digest field.

use marl_repro::algo::trace::UpdateTraceRecorder;
use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::SamplerConfig;
use marl_repro::dist::{
    loopback_pair, run_worker, Backoff, DistError, Learner, LearnerOptions, Transport,
};
use marl_repro::nn::kernels::KernelChoice;
use std::time::Duration;

mod common;

/// The golden-seed configuration both sides run: scalar kernel (machine
/// independent), warmup 64, updates every 10 samples.
fn dist_config(algorithm: Algorithm) -> TrainConfig {
    let mut c = common::seeded_config(
        algorithm,
        Task::PredatorPrey,
        3,
        SamplerConfig::Uniform,
        4,
        32,
        1024,
        4242,
    )
    .with_kernel(KernelChoice::Scalar);
    c.update_every = 10;
    c
}

/// Runs the single-process trainer and returns its digest chain.
fn single_process_digests(cfg: TrainConfig) -> Vec<marl_repro::algo::trace::UpdateDigest> {
    let mut trainer = Trainer::new(cfg).expect("trainer builds");
    trainer.attach_trace_recorder(UpdateTraceRecorder::new());
    trainer.train().expect("single-process run trains");
    trainer.detach_trace_recorder().expect("recorder attached").into_digests()
}

/// Runs the same configuration as a lockstep dist pair (learner thread =
/// this thread, worker on a spawned thread, loopback transport) and
/// returns the learner's digest chain.
fn dist_lockstep_digests(cfg: TrainConfig) -> Vec<marl_repro::algo::trace::UpdateDigest> {
    let mut learner = Learner::new(cfg, LearnerOptions::default()).expect("learner builds");
    learner.trainer_mut().attach_trace_recorder(UpdateTraceRecorder::new());
    let (mut learner_end, worker_end) = loopback_pair(1024, Duration::from_secs(10));
    let worker = std::thread::spawn(move || {
        let mut slot = Some(worker_end);
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(10), 0);
        run_worker(
            0,
            move || {
                slot.take()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .ok_or(DistError::Disconnected)
            },
            &mut backoff,
            1,
        )
    });
    learner.serve_lockstep(&mut learner_end).expect("lockstep serve completes");
    worker.join().expect("worker thread").expect("worker run completes");
    learner.into_trainer().detach_trace_recorder().expect("recorder attached").into_digests()
}

/// MADDPG: the dist lockstep digest chain equals the single-process one
/// bitwise.
#[test]
fn maddpg_lockstep_loopback_is_bitwise_identical() {
    let cfg = dist_config(Algorithm::Maddpg);
    let single = single_process_digests(cfg);
    let dist = dist_lockstep_digests(cfg);
    assert!(!single.is_empty(), "run must record updates");
    assert_eq!(single.len(), dist.len(), "update counts differ");
    for (i, (s, d)) in single.iter().zip(&dist).enumerate() {
        assert_eq!(s, d, "first divergence at update {i}");
    }
}

/// MATD3 (twin critics, delayed policy): same bitwise equivalence.
#[test]
fn matd3_lockstep_loopback_is_bitwise_identical() {
    let cfg = dist_config(Algorithm::Matd3);
    let single = single_process_digests(cfg);
    let dist = dist_lockstep_digests(cfg);
    assert!(!single.is_empty(), "run must record updates");
    assert_eq!(single, dist);
}

/// The equivalence also holds at a different seed and episode budget —
/// it is structural, not a coincidence of the golden seed.
#[test]
fn lockstep_equivalence_holds_off_the_golden_seed() {
    let mut cfg = dist_config(Algorithm::Maddpg).with_seed(99).with_episodes(6);
    cfg.update_every = 25;
    let single = single_process_digests(cfg);
    let dist = dist_lockstep_digests(cfg);
    assert!(!single.is_empty());
    assert_eq!(single, dist);
}

/// Running the dist pair twice yields identical chains: the loopback
/// path itself is deterministic.
#[test]
fn dist_lockstep_is_deterministic() {
    let cfg = dist_config(Algorithm::Maddpg);
    let a = dist_lockstep_digests(cfg);
    let b = dist_lockstep_digests(cfg);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// The learner's curve records the same episode count the single-process
/// trainer would, and the final parameters equal the single-process ones
/// (the digest chain already pins them via parameter hashes; this checks
/// the exported agent states as a user would consume them).
#[test]
fn lockstep_final_parameters_match_single_process() {
    let cfg = dist_config(Algorithm::Maddpg);
    let mut trainer = Trainer::new(cfg).expect("trainer builds");
    trainer.train().expect("trains");
    let single_states = serde_json::to_string(&trainer.agent_states()).unwrap();

    let mut learner = Learner::new(cfg, LearnerOptions::default()).expect("learner builds");
    let (mut learner_end, worker_end) = loopback_pair(1024, Duration::from_secs(10));
    let worker = std::thread::spawn(move || {
        let mut slot = Some(worker_end);
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(10), 0);
        run_worker(
            0,
            move || {
                slot.take()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .ok_or(DistError::Disconnected)
            },
            &mut backoff,
            1,
        )
    });
    learner.serve_lockstep(&mut learner_end).expect("serves");
    worker.join().unwrap().expect("worker completes");
    assert_eq!(learner.episodes_recorded(), cfg.episodes);
    let dist_states = serde_json::to_string(&learner.trainer().agent_states()).unwrap();
    assert_eq!(single_states, dist_states, "final parameters diverged");
}
