//! Integration tests of the persistence features: trainer checkpoints and
//! binary replay snapshots surviving a full save/restore cycle.

use marl_repro::algo::{Algorithm, Task, TrainConfig, Trainer};
use marl_repro::core::snapshot::{decode_replay, encode_replay};
use marl_repro::core::SamplerConfig;

fn config() -> TrainConfig {
    let mut c = TrainConfig::paper_defaults(Algorithm::Maddpg, Task::PredatorPrey, 3)
        .with_sampler(SamplerConfig::Uniform)
        .with_episodes(6)
        .with_batch_size(32)
        .with_buffer_capacity(1024)
        .with_seed(41);
    c.warmup = 64;
    c.update_every = 25;
    c
}

#[test]
fn checkpoint_json_roundtrip_through_disk_format() {
    let mut a = Trainer::new(config()).unwrap();
    a.train().unwrap();
    let ckpt = a.checkpoint();
    let json = serde_json::to_string(&ckpt).expect("serialize");
    let back: marl_repro::algo::Checkpoint = serde_json::from_str(&json).expect("deserialize");

    let mut b = Trainer::new(config()).unwrap();
    b.restore(back).unwrap();
    assert_eq!(b.update_iterations(), a.update_iterations());
    // All restored networks are bit-identical to the originals.
    for (x, y) in a.checkpoint().agents.iter().zip(b.checkpoint().agents.iter()) {
        assert_eq!(
            serde_json::to_string(&x.actor).unwrap(),
            serde_json::to_string(&y.actor).unwrap(),
            "restored actor must be bit-identical"
        );
        assert_eq!(
            serde_json::to_string(&x.critic).unwrap(),
            serde_json::to_string(&y.critic).unwrap(),
            "restored critic must be bit-identical"
        );
    }
}

#[test]
fn replay_snapshot_roundtrip_after_training() {
    let mut t = Trainer::new(config()).unwrap();
    t.train().unwrap();
    let replay = t.replay().expect("per-agent layout");
    let bytes = encode_replay(replay);
    assert!(bytes.len() > 100, "snapshot should carry payload");
    let restored = decode_replay(bytes).unwrap();
    assert_eq!(restored.len(), replay.len());
    assert_eq!(restored.agent_count(), replay.agent_count());
    assert_eq!(restored.next_slot(), replay.next_slot());
    // Every stored transition identical.
    for a in 0..replay.agent_count() {
        for slot in 0..replay.len() {
            assert_eq!(
                restored.buffer(a).transition(slot),
                replay.buffer(a).transition(slot),
                "agent {a} slot {slot}"
            );
        }
    }
}

#[test]
fn snapshot_of_wrapped_training_buffer() {
    // Train long enough that the 1024-row ring wraps (6 eps × 25 = 150 —
    // not enough; push more via prefill).
    let mut t = Trainer::new(config()).unwrap();
    t.prefill(1500).unwrap(); // wraps the 1024 ring
    let replay = t.replay().unwrap();
    assert_eq!(replay.len(), 1024);
    let restored = decode_replay(encode_replay(replay)).unwrap();
    assert_eq!(restored.next_slot(), replay.next_slot());
    assert_eq!(restored.buffer(2).transition(1000), replay.buffer(2).transition(1000));
}
