//! Crash-safety integration tests: checkpoint files survive the full
//! save/load cycle bitwise, corruption is detected by the CRC, and the
//! rotation scheme's `.prev` file backs recovery.

use marl_repro::algo::checkpoint::{
    decode_checkpoint_file, load_checkpoint_with_fallback, write_checkpoint_file,
};
use marl_repro::algo::{Algorithm, Task, TrainConfig, TrainError, Trainer};
use marl_repro::core::SamplerConfig;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

mod common;

/// Serializes the tests that run trainer updates: with `--features
/// failpoints` an armed `update::tds` site is process-global, and a
/// concurrent unrelated update would consume the fault meant for the
/// divergence-rollback test.
static UPDATES: Mutex<()> = Mutex::new(());

fn updates_lock() -> std::sync::MutexGuard<'static, ()> {
    UPDATES.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marl_crash_safety_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(algorithm: Algorithm, sampler: SamplerConfig) -> TrainConfig {
    let mut c = common::seeded_config(algorithm, Task::PredatorPrey, 3, sampler, 6, 32, 1024, 77);
    c.update_every = 25;
    c
}

fn weights_json(t: &Trainer) -> String {
    serde_json::to_string(&t.checkpoint().agents).unwrap()
}

/// The headline resume-equivalence property, through the on-disk format:
/// N episodes straight vs. N/2 → checkpoint file → fresh process image
/// (fresh trainer) → restore → N/2 more. Rewards and weights must be
/// bitwise equal for both algorithms and both a stateless and a
/// prioritized sampler.
#[test]
fn resume_from_file_is_bitwise_identical() {
    let _guard = updates_lock();
    for (algorithm, sampler, tag) in [
        (Algorithm::Maddpg, SamplerConfig::Uniform, "maddpg_uniform"),
        (Algorithm::Maddpg, SamplerConfig::IpLocality, "maddpg_ip"),
        (Algorithm::Matd3, SamplerConfig::Uniform, "matd3_uniform"),
        (Algorithm::Matd3, SamplerConfig::IpLocality, "matd3_ip"),
    ] {
        let cfg = config(algorithm, sampler);
        let mut straight = Trainer::new(cfg).unwrap();
        let full = straight.train().unwrap();

        let mut first = Trainer::new(cfg.with_episodes(3)).unwrap();
        first.train().unwrap();
        let (ckpt, replay) = first.checkpoint_full().unwrap();
        let path = tmp_path(&format!("resume_{tag}.bin"));
        write_checkpoint_file(&path, &ckpt, &replay).unwrap();

        let (ckpt, replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
        assert!(!from_prev);
        let mut resumed = Trainer::new(cfg).unwrap();
        resumed.restore_full(ckpt, &replay).unwrap();
        assert_eq!(resumed.episodes_done(), 3, "{tag}");
        let rest = resumed.train().unwrap();

        assert_eq!(rest.curve.values(), full.curve.values(), "{tag}: rewards");
        assert_eq!(rest.env_steps, full.env_steps, "{tag}");
        assert_eq!(rest.update_iterations, full.update_iterations, "{tag}");
        assert_eq!(weights_json(&resumed), weights_json(&straight), "{tag}: weights");
    }
}

/// Writing twice rotates the first file to `.prev` and both stay loadable.
#[test]
fn rotation_keeps_the_previous_checkpoint() {
    let mut t = Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform)).unwrap();
    t.prefill(100).unwrap();
    let path = tmp_path("rotate.bin");
    let (first, first_replay) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &first, &first_replay).unwrap();
    t.prefill(100).unwrap();
    let (second, second_replay) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &second, &second_replay).unwrap();

    let prev = PathBuf::from(format!("{}.prev", path.display()));
    assert!(prev.exists(), "rotation must preserve the previous file");
    let restored_len = |ckpt, replay: Vec<u8>| {
        let mut t = Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform)).unwrap();
        t.restore_full(ckpt, &replay).unwrap();
        t.replay_len()
    };
    let (live, live_replay, _) = load_checkpoint_with_fallback(&path).unwrap();
    let (old, old_replay) = marl_repro::algo::checkpoint::read_checkpoint_file(&prev).unwrap();
    assert_eq!(restored_len(live, live_replay), 200);
    assert_eq!(restored_len(old, old_replay), 100);
}

/// A corrupted live file is detected by the CRC and loading falls back to
/// the rotated `.prev` copy.
#[test]
fn corrupt_live_file_falls_back_to_prev() {
    let mut t = Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform)).unwrap();
    t.prefill(150).unwrap();
    let path = tmp_path("fallback.bin");
    let (ckpt, replay) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &ckpt, &replay).unwrap();
    t.prefill(50).unwrap();
    let (ckpt2, replay2) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &ckpt2, &replay2).unwrap();

    // Flip one payload bit in the live file.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let (loaded, loaded_replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(from_prev, "loader must report that the fallback was used");
    // The fallback state is fully restorable.
    let mut fresh = Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform)).unwrap();
    fresh.restore_full(loaded, &loaded_replay).unwrap();
    assert_eq!(fresh.replay_len(), 150);
}

/// A truncated live file (torn write reaching the live name, e.g. after a
/// partial copy) is equally recoverable.
#[test]
fn truncated_live_file_falls_back_to_prev() {
    let mut t = Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform)).unwrap();
    t.prefill(80).unwrap();
    let path = tmp_path("truncated.bin");
    let (ckpt, replay) = t.checkpoint_full().unwrap();
    write_checkpoint_file(&path, &ckpt, &replay).unwrap();
    write_checkpoint_file(&path, &ckpt, &replay).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let (_, _, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(from_prev);
}

/// When both the live and `.prev` files are unreadable the loader returns
/// a structured error naming both failures — it never panics.
#[test]
fn double_corruption_yields_structured_error() {
    let path = tmp_path("hopeless.bin");
    std::fs::write(&path, b"not a checkpoint").unwrap();
    std::fs::write(format!("{}.prev", path.display()), b"also garbage").unwrap();
    let err = load_checkpoint_with_fallback(&path).unwrap_err();
    let TrainError::Checkpoint(msg) = err else { panic!("wrong variant: {err:?}") };
    assert!(msg.contains("fallback"), "error must mention the fallback attempt: {msg}");
}

#[test]
fn missing_file_is_an_error_not_a_panic() {
    let err = load_checkpoint_with_fallback(&tmp_path("never_written.bin")).unwrap_err();
    assert!(matches!(err, TrainError::Checkpoint(_)));
}

/// Sentinel × rotation interplay: a divergence rollback in a freshly
/// resumed process (no in-memory good state yet) must read the on-disk
/// checkpoint — and when the live file is corrupt, fall back to `.prev`
/// and recover *exactly*: the finished run is bitwise identical to one
/// that never diverged.
#[cfg(feature = "failpoints")]
#[test]
fn divergence_rollback_with_corrupt_live_checkpoint_recovers_via_prev() {
    use marl_repro::algo::failpoint::{self, Fault};
    let _guard = updates_lock();
    failpoint::clear();

    let cfg = config(Algorithm::Maddpg, SamplerConfig::Uniform);
    let mut straight = Trainer::new(cfg).unwrap();
    let full = straight.train().unwrap();

    // A prior process leaves a rotated pair behind: episode-2 state in
    // `.prev`, episode-4 state live.
    let path = tmp_path("diverge_prev.bin");
    let mut prior = Trainer::new(cfg.with_episodes(4).with_checkpoint_every(2)).unwrap();
    prior.train_with_autosave(Some(&path)).unwrap();
    assert!(PathBuf::from(format!("{}.prev", path.display())).exists());

    // The live file is corrupt (bit flip mid-file), caught only on load.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    // The "resumed" process: warmup 64 at 25 steps/episode puts the first
    // update in episode 3, before the first autosave at episode 5 — so at
    // divergence time there is no in-memory last-good state and the
    // rollback must go through the on-disk fallback chain.
    let mut resumed = Trainer::new(cfg.with_checkpoint_every(5)).unwrap();
    failpoint::arm("update::tds", Fault::Nan);
    let report = resumed.train_with_autosave(Some(&path)).unwrap();
    assert!(
        failpoint::take("update::tds").is_none(),
        "the injected divergence must actually have fired"
    );

    assert_eq!(report.curve.values(), full.curve.values(), "recovery must be exact");
    assert_eq!(weights_json(&resumed), weights_json(&straight), "weights must match bitwise");
}

fn small_checkpoint_bytes() -> Vec<u8> {
    let mut t =
        Trainer::new(config(Algorithm::Maddpg, SamplerConfig::Uniform).with_buffer_capacity(256))
            .unwrap();
    t.prefill(20).unwrap();
    let (ckpt, replay) = t.checkpoint_full().unwrap();
    marl_repro::algo::checkpoint::encode_checkpoint_file(&ckpt, &replay).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every truncation of a valid checkpoint file is rejected with a
    /// structured error — decoding is total and never mis-loads a prefix.
    #[test]
    fn any_truncation_is_detected(cut in 0.0f64..1.0) {
        let good = small_checkpoint_bytes();
        let len = ((good.len() - 1) as f64 * cut) as usize;
        let err = decode_checkpoint_file(&good[..len]).unwrap_err();
        prop_assert!(matches!(err, TrainError::Checkpoint(_)));
    }

    /// CRC-32 detects every single-bit error: a flip anywhere in the file
    /// (header or payload) must surface as an error, never a silent
    /// mis-load.
    #[test]
    fn any_single_bit_flip_is_detected(pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = small_checkpoint_bytes();
        let i = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[i] ^= 1 << bit;
        let err = decode_checkpoint_file(&bytes).unwrap_err();
        prop_assert!(matches!(err, TrainError::Checkpoint(_)));
    }
}
