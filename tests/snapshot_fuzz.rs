//! Structured snapshot fuzzing (conformance pillar 3).
//!
//! Draws ≥ 256 structured mutations per on-disk format — MARC checkpoint
//! frames and V2/V1 replay snapshots — and asserts the decoding oracle:
//! every mutated frame yields a *typed* error or a structurally valid
//! value; never a panic, hang, or mis-load. The mutators are format
//! aware (`marl_conform::fuzz`), so corruption lands both in front of
//! and *behind* the checksums: truncations, splices, duplicated
//! sections, hostile length fields with a re-patched CRC, and
//! CRC-preserving payload swaps.
//!
//! A final test drives structured corruption through the crash-safety
//! path: a checksum-valid-but-hostile live checkpoint must fall back to
//! the rotated `.prev` file.

use bytes::Bytes;
use marl_conform::fuzz::{apply_mutation, snapshot_v1_from_v2, Format, Mutation};
use marl_repro::algo::checkpoint::{
    decode_checkpoint_file, encode_checkpoint_file, load_checkpoint_with_fallback,
    write_checkpoint_file, Checkpoint,
};
use marl_repro::algo::{Algorithm, Task, TrainError, Trainer};
use marl_repro::core::multi::MultiAgentReplay;
use marl_repro::core::snapshot::{decode_replay, encode_replay};
use marl_repro::core::transition::{Transition, TransitionLayout};
use marl_repro::core::SamplerConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

mod common;

/// One short prefilled run, captured once: a realistic checkpoint with a
/// prioritized-sampler run state and a populated replay section.
fn trained_checkpoint() -> &'static (Checkpoint, Vec<u8>) {
    static STATE: OnceLock<(Checkpoint, Vec<u8>)> = OnceLock::new();
    STATE.get_or_init(|| {
        let cfg = common::seeded_config(
            Algorithm::Maddpg,
            Task::PredatorPrey,
            3,
            SamplerConfig::Per,
            2,
            32,
            256,
            4242,
        );
        let mut t = Trainer::new(cfg).unwrap();
        t.prefill(120).unwrap();
        t.checkpoint_full().unwrap()
    })
}

fn checkpoint_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (ckpt, replay) = trained_checkpoint();
        encode_checkpoint_file(ckpt, replay).unwrap()
    })
}

/// A wrapped multi-agent replay (ring has lapped once) encoded as a V2
/// snapshot frame.
fn snapshot_v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let layouts = vec![TransitionLayout::new(4, 2); 3];
        let mut r = MultiAgentReplay::new(&layouts, 16);
        for t in 0..21 {
            let step: Vec<Transition> = (0..3)
                .map(|a| Transition {
                    obs: vec![(t * 10 + a) as f32; 4],
                    action: vec![0.25; 2],
                    reward: t as f32,
                    next_obs: vec![(t * 10 + a + 1) as f32; 4],
                    done: f32::from(t % 25 == 24),
                })
                .collect();
            r.push_step(&step).unwrap();
        }
        encode_replay(&r).to_vec()
    })
}

fn snapshot_v1_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| snapshot_v1_from_v2(snapshot_v2_bytes()))
}

/// Maps drawn parameters onto one of the five structured mutation kinds
/// (the stub proptest has no `prop_oneof!`; a drawn discriminant is the
/// same distribution).
fn build_mutation(kind: usize, a: usize, b: usize, value: u64, payload: Vec<u8>) -> Mutation {
    match kind {
        0 => Mutation::Truncate { keep: a },
        1 => Mutation::Splice { at: a, bytes: payload },
        2 => Mutation::DuplicateSection { src: a, len: b, dst: value as usize },
        3 => Mutation::CorruptLengthField { field: a, value },
        _ => Mutation::CrcPreservingSwap { a, b },
    }
}

/// The snapshot decoding oracle: typed error, or a replay whose
/// structural invariants hold.
fn snapshot_oracle(mutated: Vec<u8>) -> Result<(), String> {
    match decode_replay(Bytes::from(mutated)) {
        Err(_typed) => Ok(()), // every SnapshotError variant is acceptable
        Ok(r) => {
            if r.agent_count() == 0 {
                return Err("decoded a replay with zero agents".into());
            }
            for a in 0..r.agent_count() {
                let buf = r.buffer(a);
                if buf.len() > buf.capacity() || buf.next_slot() >= buf.capacity() {
                    return Err(format!(
                        "agent {a}: len {} / next {} out of range for capacity {}",
                        buf.len(),
                        buf.next_slot(),
                        buf.capacity()
                    ));
                }
            }
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MARC checkpoint frames: every structured mutation decodes to a
    /// typed `TrainError::Checkpoint` or a valid checkpoint whose replay
    /// section itself decodes totally.
    #[test]
    fn checkpoint_mutations_never_panic_or_misload(
        kind in 0usize..5,
        a in any::<usize>(),
        b in any::<usize>(),
        value in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1usize..24),
    ) {
        let m = build_mutation(kind, a, b, value, payload);
        let mutated = apply_mutation(checkpoint_bytes(), &m, Format::Checkpoint);
        match decode_checkpoint_file(&mutated) {
            Err(TrainError::Checkpoint(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "untyped error variant: {other:?}"),
            Ok((ckpt, replay)) => {
                // A CRC-preserving mutation may decode; the embedded
                // replay section must then decode totally as well.
                prop_assert!(!ckpt.agents.is_empty(), "checkpoint lost its agents");
                let inner = snapshot_oracle(replay);
                prop_assert!(inner.is_ok(), "embedded replay: {}", inner.unwrap_err());
            }
        }
    }

    /// V2 replay snapshots: typed `SnapshotError` or a structurally
    /// valid replay, for every structured mutation.
    #[test]
    fn snapshot_v2_mutations_never_panic_or_misload(
        kind in 0usize..5,
        a in any::<usize>(),
        b in any::<usize>(),
        value in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1usize..24),
    ) {
        let m = build_mutation(kind, a, b, value, payload);
        let mutated = apply_mutation(snapshot_v2_bytes(), &m, Format::SnapshotV2);
        let verdict = snapshot_oracle(mutated);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// Legacy V1 snapshots have *no* checksum, so every mutation reaches
    /// the structural validation directly — the decoder must still be
    /// total.
    #[test]
    fn snapshot_v1_mutations_never_panic_or_misload(
        kind in 0usize..5,
        a in any::<usize>(),
        b in any::<usize>(),
        value in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1usize..24),
    ) {
        let m = build_mutation(kind, a, b, value, payload);
        let mutated = apply_mutation(snapshot_v1_bytes(), &m, Format::SnapshotV1);
        let verdict = snapshot_oracle(mutated);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}

/// Unmutated baselines decode cleanly — the fuzz fixtures are valid, so
/// every failure above is attributable to the mutation.
#[test]
fn baselines_are_valid() {
    let (ckpt, replay) = decode_checkpoint_file(checkpoint_bytes()).unwrap();
    assert_eq!(ckpt.agents.len(), 3);
    assert!(!replay.is_empty());
    assert_eq!(decode_replay(Bytes::from(snapshot_v2_bytes().to_vec())).unwrap().len(), 16);
    assert_eq!(decode_replay(Bytes::from(snapshot_v1_bytes().to_vec())).unwrap().len(), 16);
}

/// Structured corruption through the crash-safety path: a hostile
/// length field with a *valid* checksum in the live file must be caught
/// by the decoder's bounds checks and fall back to `.prev`.
#[test]
fn crc_valid_hostile_live_file_falls_back_to_prev() {
    let dir = std::env::temp_dir().join(format!("marl_snapshot_fuzz_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hostile.bin");
    let (ckpt, replay) = trained_checkpoint();
    write_checkpoint_file(&path, ckpt, replay).unwrap();
    write_checkpoint_file(&path, ckpt, replay).unwrap(); // rotates to .prev

    let live = std::fs::read(&path).unwrap();
    let hostile = apply_mutation(
        &live,
        &Mutation::CorruptLengthField { field: 0, value: u64::MAX / 2 },
        Format::Checkpoint,
    );
    assert_ne!(hostile, live);
    std::fs::write(&path, &hostile).unwrap();

    let (recovered, recovered_replay, from_prev) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(from_prev, "hostile live frame must be rejected in favour of .prev");
    assert_eq!(recovered.agents.len(), 3);
    assert_eq!(recovered_replay, *replay);
    std::fs::remove_dir_all(&dir).ok();
}
